package battery

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProfileValidate(t *testing.T) {
	good := Profile{{Current: 5, Duration: 1}, {Current: 0, Duration: 2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{{Current: 5, Duration: 0}},
		{{Current: 5, Duration: -1}},
		{{Current: -5, Duration: 1}},
		{{Current: math.NaN(), Duration: 1}},
		{{Current: 5, Duration: math.Inf(1)}},
	}
	for k, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", k)
		}
	}
	if err := (Profile{}).Validate(); err != nil {
		t.Errorf("empty profile should validate: %v", err)
	}
}

func TestProfileTotalsAndDelivered(t *testing.T) {
	p := Profile{{Current: 10, Duration: 2}, {Current: 5, Duration: 4}}
	if p.TotalTime() != 6 {
		t.Fatalf("TotalTime = %g", p.TotalTime())
	}
	if got := p.DeliveredCharge(6); got != 40 {
		t.Fatalf("DeliveredCharge(6) = %g", got)
	}
	if got := p.DeliveredCharge(3); got != 25 { // 10·2 + 5·1
		t.Fatalf("DeliveredCharge(3) = %g", got)
	}
	if got := p.DeliveredCharge(100); got != 40 {
		t.Fatalf("DeliveredCharge(100) = %g", got)
	}
	if got := p.DeliveredCharge(0); got != 0 {
		t.Fatalf("DeliveredCharge(0) = %g", got)
	}
}

func TestProfileCurrentAt(t *testing.T) {
	p := Profile{{Current: 10, Duration: 2}, {Current: 5, Duration: 4}}
	cases := []struct{ at, want float64 }{
		{-1, 0}, {0, 10}, {1.9, 10}, {2, 5}, {5.9, 5}, {6, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := p.CurrentAt(c.at); got != c.want {
			t.Errorf("CurrentAt(%g) = %g, want %g", c.at, got, c.want)
		}
	}
}

func TestProfileStarts(t *testing.T) {
	p := Profile{{Current: 1, Duration: 2}, {Current: 2, Duration: 3}, {Current: 3, Duration: 4}}
	starts := p.Starts()
	want := []float64{0, 2, 5}
	for k := range want {
		if starts[k] != want[k] {
			t.Fatalf("Starts = %v", starts)
		}
	}
}

func TestProfileCompact(t *testing.T) {
	p := Profile{{Current: 5, Duration: 1}, {Current: 5, Duration: 2}, {Current: 3, Duration: 1}}
	c := p.Compact()
	if len(c) != 2 || c[0].Duration != 3 || c[1].Current != 3 {
		t.Fatalf("Compact = %v", c)
	}
	if len(p) != 3 {
		t.Fatal("Compact mutated the receiver")
	}
}

func TestProfileScaledReversedSorted(t *testing.T) {
	p := Profile{{Current: 1, Duration: 1}, {Current: 3, Duration: 2}, {Current: 2, Duration: 3}}
	s := p.Scaled(2)
	if s[1].Current != 6 || s[1].Duration != 2 {
		t.Fatalf("Scaled = %v", s)
	}
	r := p.Reversed()
	if r[0].Current != 2 || r[2].Current != 1 {
		t.Fatalf("Reversed = %v", r)
	}
	d := p.SortedDescending()
	if d[0].Current != 3 || d[1].Current != 2 || d[2].Current != 1 {
		t.Fatalf("SortedDescending = %v", d)
	}
	// Original untouched.
	if p[0].Current != 1 || p[1].Current != 3 {
		t.Fatal("receiver mutated")
	}
}

func TestProfileCIF(t *testing.T) {
	flat := Profile{{Current: 5, Duration: 1}, {Current: 5, Duration: 1}}
	if flat.CIF() != 0 {
		t.Fatalf("flat CIF = %g", flat.CIF())
	}
	dec := Profile{{Current: 9, Duration: 1}, {Current: 5, Duration: 1}, {Current: 1, Duration: 1}}
	if dec.CIF() != 0 {
		t.Fatalf("decreasing CIF = %g", dec.CIF())
	}
	inc := dec.Reversed()
	if inc.CIF() != 1 {
		t.Fatalf("increasing CIF = %g", inc.CIF())
	}
	mixed := Profile{{Current: 5, Duration: 1}, {Current: 9, Duration: 1}, {Current: 1, Duration: 1}}
	if mixed.CIF() != 0.5 {
		t.Fatalf("mixed CIF = %g", mixed.CIF())
	}
	if (Profile{}).CIF() != 0 || (Profile{{Current: 1, Duration: 1}}).CIF() != 0 {
		t.Fatal("degenerate CIF should be 0")
	}
}

func TestProfilePeakMean(t *testing.T) {
	p := Profile{{Current: 10, Duration: 1}, {Current: 2, Duration: 3}}
	if p.PeakCurrent() != 10 {
		t.Fatalf("Peak = %g", p.PeakCurrent())
	}
	if !almost(p.MeanCurrent(), 16.0/4, 1e-12) {
		t.Fatalf("Mean = %g", p.MeanCurrent())
	}
	if (Profile{}).MeanCurrent() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := Profile{{Current: 10, Duration: 1.5}, {Current: 0, Duration: 2}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != p[0] || back[1] != p[1] {
		t.Fatalf("round trip = %v", back)
	}
	if _, err := ReadProfileJSON(strings.NewReader("[{\"current\":-1,\"duration\":1}]")); err == nil {
		t.Fatal("invalid profile should be rejected")
	}
	if _, err := ReadProfileJSON(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

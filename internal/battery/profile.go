// Package battery implements the analytical battery models the paper's
// scheduler builds on: the Rakhmatov–Vrudhula diffusion model (the paper's
// Equation 1 and cost function), an ideal coulomb-counting model, and a
// Peukert's-law model used by earlier battery-aware scheduling work. It also
// provides the discharge-profile type shared by all of them and a lifetime
// solver that handles the non-monotonic apparent charge caused by the
// recovery effect.
//
// Units follow the paper: currents in mA, times in minutes, charge in
// mA·min, and the diffusion parameter beta in min^(-1/2).
//
//battlint:deterministic
package battery

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Interval is one constant-current segment of a discharge profile.
type Interval struct {
	// Current is the load current in mA. Zero models an idle (rest)
	// period during which the battery recovers.
	Current float64 `json:"current"`
	// Duration is the segment length in minutes; it must be positive.
	Duration float64 `json:"duration"`
}

// Profile is a discharge profile: consecutive constant-current intervals
// starting at time zero. The slice order is the time order.
type Profile []Interval

// Validate reports the first structural problem in the profile: negative
// currents or non-positive durations. An empty profile is valid.
func (p Profile) Validate() error {
	for k, iv := range p {
		if iv.Duration <= 0 || math.IsNaN(iv.Duration) || math.IsInf(iv.Duration, 0) {
			return fmt.Errorf("battery: interval %d has non-positive duration %g", k, iv.Duration)
		}
		if iv.Current < 0 || math.IsNaN(iv.Current) || math.IsInf(iv.Current, 0) {
			return fmt.Errorf("battery: interval %d has negative current %g", k, iv.Current)
		}
	}
	return nil
}

// TotalTime returns the profile length T: the sum of interval durations.
func (p Profile) TotalTime() float64 {
	var t float64
	for _, iv := range p {
		t += iv.Duration
	}
	return t
}

// DeliveredCharge returns the charge actually delivered to the load by time
// at (mA·min): the integral of current over [0, min(at, TotalTime)].
func (p Profile) DeliveredCharge(at float64) float64 {
	var q, t float64
	for _, iv := range p {
		if at <= t {
			break
		}
		d := iv.Duration
		if t+d > at {
			d = at - t
		}
		q += iv.Current * d
		t += iv.Duration
	}
	return q
}

// Starts returns the start time of every interval.
func (p Profile) Starts() []float64 {
	starts := make([]float64, len(p))
	var t float64
	for k, iv := range p {
		starts[k] = t
		t += iv.Duration
	}
	return starts
}

// CurrentAt returns the load current at time t (0 beyond the profile end;
// interval start times are inclusive, ends exclusive).
func (p Profile) CurrentAt(t float64) float64 {
	if t < 0 {
		return 0
	}
	var acc float64
	for _, iv := range p {
		if t < acc+iv.Duration {
			return iv.Current
		}
		acc += iv.Duration
	}
	return 0
}

// PeakCurrent returns the maximum interval current (0 for empty profiles).
func (p Profile) PeakCurrent() float64 {
	var m float64
	for _, iv := range p {
		if iv.Current > m {
			m = iv.Current
		}
	}
	return m
}

// MeanCurrent returns the time-weighted mean current over the profile
// (0 for empty profiles).
func (p Profile) MeanCurrent() float64 {
	t := p.TotalTime()
	if t == 0 {
		return 0
	}
	return p.DeliveredCharge(t) / t
}

// Compact merges adjacent intervals with equal current and returns a new
// profile; the receiver is unchanged.
func (p Profile) Compact() Profile {
	out := make(Profile, 0, len(p))
	for _, iv := range p {
		if n := len(out); n > 0 && out[n-1].Current == iv.Current {
			out[n-1].Duration += iv.Duration
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Scaled returns a copy of the profile with every current multiplied by f.
func (p Profile) Scaled(f float64) Profile {
	out := make(Profile, len(p))
	for k, iv := range p {
		out[k] = Interval{Current: iv.Current * f, Duration: iv.Duration}
	}
	return out
}

// Reversed returns the profile with the interval order reversed. The
// paper's Section 3 uses this to exercise the claim that discharging in
// non-increasing current order loses the least charge.
func (p Profile) Reversed() Profile {
	out := make(Profile, len(p))
	for k := range p {
		out[k] = p[len(p)-1-k]
	}
	return out
}

// SortedDescending returns the intervals reordered by non-increasing
// current (stable). This is the optimal order for independent tasks under
// the Rakhmatov–Vrudhula model (property proved in the paper's reference
// [1] and relied on in Section 3).
func (p Profile) SortedDescending() Profile {
	out := append(Profile(nil), p...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Current > out[b].Current })
	return out
}

// CIF returns the Current Increase Fraction of the profile: the fraction of
// adjacent interval boundaries at which current strictly increases (the
// paper's CIF measure, Equation for J_k). Profiles with fewer than two
// intervals have CIF 0.
func (p Profile) CIF() float64 {
	if len(p) < 2 {
		return 0
	}
	inc := 0
	for k := 1; k < len(p); k++ {
		if p[k-1].Current < p[k].Current {
			inc++
		}
	}
	return float64(inc) / float64(len(p)-1)
}

// WriteJSON encodes the profile as indented JSON (an array of intervals).
func (p Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfileJSON decodes a profile from JSON and validates it.
func ReadProfileJSON(r io.Reader) (Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("battery: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

package battery

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	p := Profile{{Current: 400, Duration: 10}, {Current: 0, Duration: 5}, {Current: 100, Duration: 10}}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf, SVGOptions{Title: "demo & test"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "polyline", "400 mA", "25.0 min", "sigma max", "demo &amp; test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two polylines: staircase + sigma overlay.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polyline count = %d, want 2", got)
	}
}

func TestWriteSVGIdealOverlay(t *testing.T) {
	p := Profile{{Current: 100, Duration: 10}}
	var buf bytes.Buffer
	if err := p.WriteSVG(&buf, SVGOptions{Model: Ideal{}, Width: 400, Height: 200}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ideal") {
		t.Fatal("overlay label missing")
	}
}

func TestWriteSVGRejectsBadProfiles(t *testing.T) {
	var buf bytes.Buffer
	if err := (Profile{}).WriteSVG(&buf, SVGOptions{}); err == nil {
		t.Fatal("empty profile should error")
	}
	if err := (Profile{{Current: -1, Duration: 1}}).WriteSVG(&buf, SVGOptions{}); err == nil {
		t.Fatal("invalid profile should error")
	}
}

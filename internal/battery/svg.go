package battery

import (
	"fmt"
	"io"
	"strings"
)

// SVGOptions controls WriteSVG. The zero value gives an 800×300 chart
// with the sigma overlay under the paper's default model.
type SVGOptions struct {
	// Width and Height are the image dimensions in pixels (defaults
	// 800×300).
	Width, Height int
	// Model, if non-nil, overlays sigma(t) (scaled to its final value)
	// on the current steps; nil overlays the paper's Rakhmatov model.
	// Use Ideal{} for a plain delivered-charge overlay.
	Model Model
	// Samples is the sigma-curve sampling density (default 256).
	Samples int
	// Title is drawn at the top-left when non-empty.
	Title string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 300
	}
	if o.Model == nil {
		o.Model = NewRakhmatov(DefaultBeta)
	}
	if o.Samples <= 0 {
		o.Samples = 256
	}
	return o
}

// WriteSVG renders the discharge profile as a standalone SVG: the
// current-vs-time staircase (left axis) with the model's apparent charge
// sigma(t) overlaid (right axis, scaled to its maximum). The output is
// plain SVG 1.1 with no external references, suitable for embedding in
// reports.
func (p Profile) WriteSVG(w io.Writer, opts SVGOptions) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(p) == 0 {
		return fmt.Errorf("battery: empty profile")
	}
	o := opts.withDefaults()
	total := p.TotalTime()
	peak := p.PeakCurrent()
	if peak <= 0 {
		peak = 1
	}

	const margin = 40.0
	plotW := float64(o.Width) - 2*margin
	plotH := float64(o.Height) - 2*margin
	x := func(t float64) float64 { return margin + t/total*plotW }
	yCur := func(i float64) float64 { return margin + (1-i/peak)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", o.Width, o.Height)
	if o.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			margin, margin-16, svgEscape(o.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		margin, margin+plotH, margin+plotW, margin+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		margin, margin, margin, margin+plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%.0f mA</text>`+"\n",
		4.0, margin+8, peak)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%.1f min</text>`+"\n",
		margin+plotW-40, margin+plotH+16, total)

	// Current staircase.
	var pts []string
	t := 0.0
	pts = append(pts, fmt.Sprintf("%.2f,%.2f", x(0), yCur(p[0].Current)))
	for _, iv := range p {
		pts = append(pts, fmt.Sprintf("%.2f,%.2f", x(t), yCur(iv.Current)))
		t += iv.Duration
		pts = append(pts, fmt.Sprintf("%.2f,%.2f", x(t), yCur(iv.Current)))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`+"\n",
		strings.Join(pts, " "))

	// Sigma overlay, scaled to its final value.
	sigmaEnd := o.Model.ChargeLost(p, total)
	if sigmaEnd > 0 {
		maxSigma := sigmaEnd
		curve := make([]string, 0, o.Samples+1)
		vals := make([]float64, o.Samples+1)
		for k := 0; k <= o.Samples; k++ {
			tt := total * float64(k) / float64(o.Samples)
			vals[k] = o.Model.ChargeLost(p, tt)
			if vals[k] > maxSigma {
				maxSigma = vals[k]
			}
		}
		for k := 0; k <= o.Samples; k++ {
			tt := total * float64(k) / float64(o.Samples)
			y := margin + (1-vals[k]/maxSigma)*plotH
			curve = append(curve, fmt.Sprintf("%.2f,%.2f", x(tt), y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#d62728" stroke-width="1.5" stroke-dasharray="4 3"/>`+"\n",
			strings.Join(curve, " "))
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" fill="#d62728">sigma max %.0f mA·min (%s)</text>`+"\n",
			margin+4, margin+12, maxSigma, svgEscape(o.Model.Name()))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

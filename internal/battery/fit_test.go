package battery

import (
	"math"
	"testing"
)

// TestFitRakhmatovRoundTrip generates lifetimes from a known model and
// recovers (alpha, beta) from them.
func TestFitRakhmatovRoundTrip(t *testing.T) {
	trueBeta := 0.273
	trueAlpha := 40000.0
	m := NewRakhmatov(trueBeta)
	var obs []Observation
	for _, i := range []float64{50, 100, 200, 400, 800} {
		l, err := ConstantLoadLifetime(m, i, trueAlpha)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{Current: i, Lifetime: l})
	}
	alpha, beta, err := FitRakhmatov(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta-trueBeta)/trueBeta > 0.01 {
		t.Errorf("beta = %g, want %g", beta, trueBeta)
	}
	if math.Abs(alpha-trueAlpha)/trueAlpha > 0.01 {
		t.Errorf("alpha = %g, want %g", alpha, trueAlpha)
	}
	// Predicted lifetimes must match the observations closely.
	pred, err := PredictLifetimes(alpha, beta, obs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range obs {
		if math.Abs(pred[k]-obs[k].Lifetime)/obs[k].Lifetime > 0.02 {
			t.Errorf("obs %d: predicted %g, measured %g", k, pred[k], obs[k].Lifetime)
		}
	}
}

// TestFitRakhmatovNoisy adds measurement noise; the fit should still land
// near the truth.
func TestFitRakhmatovNoisy(t *testing.T) {
	m := NewRakhmatov(0.3)
	noise := []float64{1.03, 0.98, 1.01, 0.97}
	currents := []float64{80, 160, 320, 640}
	var obs []Observation
	for k, i := range currents {
		l, err := ConstantLoadLifetime(m, i, 30000)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{Current: i, Lifetime: l * noise[k]})
	}
	alpha, beta, err := FitRakhmatov(obs)
	if err != nil {
		t.Fatal(err)
	}
	if beta < 0.15 || beta > 0.6 {
		t.Errorf("beta = %g, want near 0.3", beta)
	}
	if alpha < 25000 || alpha > 36000 {
		t.Errorf("alpha = %g, want near 30000", alpha)
	}
}

// TestFitRakhmatovIdealBattery: lifetimes exactly inverse in current mean
// no rate-capacity effect, so the fitted beta should run to the top of
// the bracket (stiff battery ≈ ideal).
func TestFitRakhmatovIdealBattery(t *testing.T) {
	var obs []Observation
	for _, i := range []float64{100, 200, 400} {
		obs = append(obs, Observation{Current: i, Lifetime: 10000 / i})
	}
	alpha, beta, err := FitRakhmatov(obs)
	if err != nil {
		t.Fatal(err)
	}
	if beta < 10 {
		t.Errorf("ideal data should fit a very large beta, got %g", beta)
	}
	if math.Abs(alpha-10000)/10000 > 0.01 {
		t.Errorf("alpha = %g, want 10000", alpha)
	}
}

func TestFitRakhmatovValidation(t *testing.T) {
	if _, _, err := FitRakhmatov(nil); err == nil {
		t.Error("empty observations should error")
	}
	if _, _, err := FitRakhmatov([]Observation{{100, 10}}); err == nil {
		t.Error("single observation should error")
	}
	if _, _, err := FitRakhmatov([]Observation{{100, 10}, {100, 12}}); err == nil {
		t.Error("single distinct current should error")
	}
	if _, _, err := FitRakhmatov([]Observation{{100, 10}, {-5, 12}}); err == nil {
		t.Error("negative current should error")
	}
	if _, _, err := FitRakhmatov([]Observation{{100, 10}, {200, 0}}); err == nil {
		t.Error("zero lifetime should error")
	}
}

package battery

import (
	"fmt"
	"math"
)

// Peukert is the empirical Peukert's-law battery model used by earlier
// battery-aware scheduling work (for example Luo & Jha [5], via Pedram &
// Wu [6]). Under a constant discharge current I, a battery rated for
// capacity C at reference current Iref lasts
//
//	L = C / (Iref * (I/Iref)^k)
//
// with Peukert exponent k slightly above 1. For a piecewise-constant
// profile we charge each interval its Peukert-effective drain:
//
//	sigma(T) = sum_k Iref * (I_k/Iref)^k * d_k
//
// This captures the rate-capacity effect (k > 1 penalizes high currents
// superlinearly) but, unlike the Rakhmatov model, has no recovery effect:
// rest periods merely add nothing. Exponent 1 reduces to the ideal model.
type Peukert struct {
	// Exponent is Peukert's k (typical lead-acid 1.1–1.3; Li-ion closer
	// to 1.05). Must be >= 1.
	Exponent float64
	// RefCurrent is the rated discharge current Iref in mA at which the
	// battery's capacity is specified. Must be positive.
	RefCurrent float64
}

// NewPeukert returns a Peukert model, panicking on non-physical parameters
// (exponent below 1 or non-finite, reference current non-positive or
// non-finite). Spec.Resolve is the non-panicking construction path.
func NewPeukert(exponent, refCurrent float64) Peukert {
	if exponent < 1 || math.IsNaN(exponent) || math.IsInf(exponent, 0) {
		panic(fmt.Sprintf("battery: Peukert exponent must be a finite number >= 1, got %g", exponent))
	}
	if refCurrent <= 0 || math.IsNaN(refCurrent) || math.IsInf(refCurrent, 0) {
		panic(fmt.Sprintf("battery: Peukert reference current must be positive and finite, got %g", refCurrent))
	}
	return Peukert{Exponent: exponent, RefCurrent: refCurrent}
}

// Name implements Model.
func (pk Peukert) Name() string {
	return fmt.Sprintf("peukert(k=%g,Iref=%g)", pk.Exponent, pk.RefCurrent)
}

// ChargeLost implements Model.
func (pk Peukert) ChargeLost(p Profile, at float64) float64 {
	if at <= 0 {
		return 0
	}
	var sigma, start float64
	for _, iv := range p {
		if start >= at {
			break
		}
		d := iv.Duration
		if start+d > at {
			d = at - start
		}
		if iv.Current > 0 {
			sigma += pk.RefCurrent * math.Pow(iv.Current/pk.RefCurrent, pk.Exponent) * d
		}
		start += iv.Duration
	}
	return sigma
}

// Package sim is a discrete-event simulator for the portable platform the
// paper assumes: a single processing element (a voltage/frequency-scalable
// CPU or an FPGA) driven by a battery, executing a schedule's tasks
// sequentially. The paper takes per-design-point time and current estimates
// as given and validates schedules analytically; this simulator closes the
// loop by actually "running" a schedule against the battery model,
// including implementation-switch overheads the analysis folds away
// (DVS level-switch time, FPGA reconfiguration) and mid-run battery death.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// EventKind tags a simulation trace event.
type EventKind int

const (
	// EventExec is a task executing with its assigned design point.
	EventExec EventKind = iota
	// EventSwitch is a DVS voltage/frequency level change.
	EventSwitch
	// EventReconfig is an FPGA bitstream load.
	EventReconfig
	// EventIdle is inserted rest (trailing slack).
	EventIdle
)

func (k EventKind) String() string {
	switch k {
	case EventExec:
		return "exec"
	case EventSwitch:
		return "switch"
	case EventReconfig:
		return "reconfig"
	case EventIdle:
		return "idle"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one interval of the simulated run.
type Event struct {
	Kind    EventKind
	TaskID  int     // task being (or about to be) executed; 0 for idle
	Point   int     // 0-based design point (exec events)
	Start   float64 // minutes from run start
	End     float64
	Current float64 // platform current during the event, mA
}

// ProcessingElement models the implementation-switch behaviour of the
// platform's compute device.
type ProcessingElement interface {
	// SwitchOverhead returns the (duration, current) cost of moving
	// from design point `from` of the previous task to design point
	// `to` of the next task; (0, 0) means free. from is -1 for the
	// first task.
	SwitchOverhead(from, to int) (duration, current float64)
	// Kind returns the trace event kind for switch overheads.
	Kind() EventKind
	// Name identifies the element in reports.
	Name() string
}

// CPU is a DVS processor: changing voltage/frequency level costs a fixed
// re-lock time at a given current. Same-level transitions are free.
type CPU struct {
	// SwitchTime is the level-change duration in minutes (PLL/DC-DC
	// settle time); typical values are well under a millisecond, so
	// the default 0 is a faithful simplification.
	SwitchTime float64
	// SwitchCurrent is the platform current during the change, mA.
	SwitchCurrent float64
}

// SwitchOverhead implements ProcessingElement.
func (c CPU) SwitchOverhead(from, to int) (float64, float64) {
	if from == to || from < 0 || c.SwitchTime <= 0 {
		return 0, 0
	}
	return c.SwitchTime, c.SwitchCurrent
}

// Kind implements ProcessingElement.
func (c CPU) Kind() EventKind { return EventSwitch }

// Name implements ProcessingElement.
func (c CPU) Name() string { return "dvs-cpu" }

// FPGA reconfigures between tasks: every task runs its own bitstream, so
// each task boundary pays the reconfiguration cost regardless of design
// point (unless ReconfigTime is zero).
type FPGA struct {
	// ReconfigTime is the bitstream load time in minutes.
	ReconfigTime float64
	// ReconfigCurrent is the platform current while loading, mA.
	ReconfigCurrent float64
}

// SwitchOverhead implements ProcessingElement.
func (f FPGA) SwitchOverhead(from, to int) (float64, float64) {
	if f.ReconfigTime <= 0 {
		return 0, 0
	}
	return f.ReconfigTime, f.ReconfigCurrent
}

// Kind implements ProcessingElement.
func (f FPGA) Kind() EventKind { return EventReconfig }

// Name implements ProcessingElement.
func (f FPGA) Name() string { return "fpga" }

// Platform bundles the device, peripherals and battery of a simulated run.
type Platform struct {
	// PE is the processing element; nil means an ideal CPU with free
	// switches (the paper's model, where all overheads are folded into
	// the per-task estimates).
	PE ProcessingElement
	// BaseCurrent is added to every interval's current: peripherals
	// (memory, display) that stay on for the whole run. The paper
	// folds these into the task currents, so the default is 0.
	BaseCurrent float64
	// Model is the battery model (default: Rakhmatov with the paper's
	// beta).
	Model battery.Model
	// Capacity is the battery capacity alpha in mA·min; 0 or +Inf
	// means "sufficiently large" (the paper's illustrative setting) —
	// the battery never dies.
	Capacity float64
}

func (p Platform) withDefaults() Platform {
	if p.PE == nil {
		p.PE = CPU{}
	}
	if p.Model == nil {
		p.Model = battery.NewRakhmatov(battery.DefaultBeta)
	}
	if p.Capacity == 0 {
		p.Capacity = math.Inf(1)
	}
	return p
}

// Result is the outcome of a simulated run.
type Result struct {
	// Events is the full execution trace.
	Events []Event
	// Profile is the battery discharge profile the run produced
	// (including overheads and base current).
	Profile battery.Profile
	// Completed reports whether every task finished before the battery
	// died.
	Completed bool
	// DiedAt is the battery death time (only meaningful when
	// !Completed).
	DiedAt float64
	// FinishTime is the completion time of the last finished task.
	FinishTime float64
	// ChargeLost is sigma at the end of the run.
	ChargeLost float64
	// Delivered is the charge delivered to the load, mA·min.
	Delivered float64
	// TasksCompleted counts tasks that finished.
	TasksCompleted int
}

// Run executes the schedule on the platform. The schedule must validate
// against the graph. Battery death is detected at the first time sigma
// crosses the capacity; execution stops mid-task when that happens.
func Run(p Platform, g *taskgraph.Graph, s *sched.Schedule) (*Result, error) {
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if p.BaseCurrent < 0 {
		return nil, errors.New("sim: negative base current")
	}

	res := &Result{Completed: true}
	var profile battery.Profile
	now := 0.0
	prevPoint := -1

	appendInterval := func(kind EventKind, taskID, point int, current, dur float64) {
		if dur <= 0 {
			return
		}
		ev := Event{Kind: kind, TaskID: taskID, Point: point, Start: now, End: now + dur, Current: current + p.BaseCurrent}
		res.Events = append(res.Events, ev)
		profile = append(profile, battery.Interval{Current: ev.Current, Duration: dur})
		now += dur
	}

	died := func() (float64, bool) {
		if math.IsInf(p.Capacity, 1) {
			return 0, false
		}
		return battery.Lifetime(p.Model, profile, p.Capacity, battery.LifetimeOptions{})
	}

	for _, id := range s.Order {
		pt := g.Task(id).Points[s.Assignment[id]]
		// Implementation switch overhead.
		if d, c := p.PE.SwitchOverhead(prevPoint, s.Assignment[id]); d > 0 {
			appendInterval(p.PE.Kind(), id, s.Assignment[id], c, d)
		}
		appendInterval(EventExec, id, s.Assignment[id], pt.Current, pt.Time)
		prevPoint = s.Assignment[id]
		if t, dead := died(); dead {
			res.Completed = false
			res.DiedAt = t
			// Count tasks that finished strictly before death.
			res.TasksCompleted = 0
			for _, ev := range res.Events {
				if ev.Kind == EventExec && ev.End <= t {
					res.TasksCompleted++
				}
			}
			res.FinishTime = t
			res.Profile = profile
			res.ChargeLost = p.Model.ChargeLost(profile, t)
			res.Delivered = profile.DeliveredCharge(t)
			return res, nil
		}
		res.TasksCompleted++
	}
	res.FinishTime = now
	res.Profile = profile
	res.ChargeLost = p.Model.ChargeLost(profile, now)
	res.Delivered = profile.DeliveredCharge(now)
	return res, nil
}

// RunProfile drives the platform's battery with an arbitrary discharge
// profile (for example an idle-padded one from core.OptimizeIdle's
// IdlePlan.Apply) and reports completion or death. Base current is added
// to every interval; the processing element is not consulted (the profile
// already encodes the work).
func RunProfile(p Platform, profile battery.Profile) (*Result, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	if p.BaseCurrent < 0 {
		return nil, errors.New("sim: negative base current")
	}
	run := make(battery.Profile, len(profile))
	copy(run, profile)
	if p.BaseCurrent > 0 {
		for i := range run {
			run[i].Current += p.BaseCurrent
		}
	}
	res := &Result{Completed: true, Profile: run, FinishTime: run.TotalTime()}
	if !math.IsInf(p.Capacity, 1) {
		if t, dead := battery.Lifetime(p.Model, run, p.Capacity, battery.LifetimeOptions{}); dead {
			res.Completed = false
			res.DiedAt = t
			res.FinishTime = t
		}
	}
	res.ChargeLost = p.Model.ChargeLost(run, res.FinishTime)
	res.Delivered = run.DeliveredCharge(res.FinishTime)
	return res, nil
}

// LifetimeUnderRepetition runs the schedule back to back until the battery
// dies and returns (full runs completed, death time). It models the
// paper's motivating scenario — a periodic application draining a finite
// battery — and shows how the scheduler's sigma savings convert into extra
// mission cycles. maxRuns bounds the search.
func LifetimeUnderRepetition(p Platform, g *taskgraph.Graph, s *sched.Schedule, maxRuns int) (int, float64, error) {
	if err := s.Validate(g); err != nil {
		return 0, 0, err
	}
	p = p.withDefaults()
	if math.IsInf(p.Capacity, 1) {
		return 0, 0, errors.New("sim: repetition lifetime needs a finite capacity")
	}
	one := s.Profile(g)
	if p.BaseCurrent > 0 {
		for i := range one {
			one[i].Current += p.BaseCurrent
		}
	}
	var profile battery.Profile
	for run := 1; run <= maxRuns; run++ {
		profile = append(profile, one...)
		if t, dead := battery.Lifetime(p.Model, profile, p.Capacity, battery.LifetimeOptions{}); dead {
			return run - 1, t, nil
		}
	}
	return maxRuns, profile.TotalTime(), nil
}

package sim

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func chain(t *testing.T) (*taskgraph.Graph, *sched.Schedule) {
	t.Helper()
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 100, Time: 2}, taskgraph.DesignPoint{Current: 20, Time: 4})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 200, Time: 1}, taskgraph.DesignPoint{Current: 40, Time: 3})
	b.AddEdge(1, 2)
	g := b.MustBuild()
	s := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	return g, s
}

func TestRunMatchesAnalyticProfile(t *testing.T) {
	g, s := chain(t)
	res, err := Run(Platform{}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.TasksCompleted != 2 {
		t.Fatalf("run did not complete: %+v", res)
	}
	want := s.Profile(g)
	if len(res.Profile) != len(want) {
		t.Fatalf("profile length %d, want %d", len(res.Profile), len(want))
	}
	for k := range want {
		if res.Profile[k] != want[k] {
			t.Fatalf("profile[%d] = %v, want %v", k, res.Profile[k], want[k])
		}
	}
	if !almost(res.FinishTime, 5, 1e-12) {
		t.Fatalf("finish = %g", res.FinishTime)
	}
	m := battery.NewRakhmatov(battery.DefaultBeta)
	if !almost(res.ChargeLost, m.ChargeLost(want, 5), 1e-9) {
		t.Fatalf("sigma mismatch: %g", res.ChargeLost)
	}
	if !almost(res.Delivered, 320, 1e-9) { // 100·2 + 40·3
		t.Fatalf("delivered = %g", res.Delivered)
	}
	// Two exec events, no overheads by default.
	if len(res.Events) != 2 || res.Events[0].Kind != EventExec {
		t.Fatalf("events = %+v", res.Events)
	}
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	g, s := chain(t)
	bad := s.Clone()
	bad.Order = []int{2, 1}
	if _, err := Run(Platform{}, g, bad); err == nil {
		t.Fatal("invalid schedule accepted")
	}
	if _, err := Run(Platform{BaseCurrent: -1}, g, s); err == nil {
		t.Fatal("negative base current accepted")
	}
}

func TestBaseCurrentAdded(t *testing.T) {
	g, s := chain(t)
	res, err := Run(Platform{BaseCurrent: 10}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile[0].Current != 110 || res.Profile[1].Current != 50 {
		t.Fatalf("profile = %v", res.Profile)
	}
}

func TestCPUSwitchOverhead(t *testing.T) {
	g, s := chain(t)
	// Tasks use different design points (0 then 1), so exactly one
	// switch happens between them; none before the first task.
	res, err := Run(Platform{PE: CPU{SwitchTime: 0.5, SwitchCurrent: 40}}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 3 {
		t.Fatalf("events = %+v", res.Events)
	}
	sw := res.Events[1]
	if sw.Kind != EventSwitch || sw.Current != 40 || !almost(sw.End-sw.Start, 0.5, 1e-12) {
		t.Fatalf("switch event = %+v", sw)
	}
	if !almost(res.FinishTime, 5.5, 1e-12) {
		t.Fatalf("finish = %g", res.FinishTime)
	}
	// Same design point twice → no switch.
	s2 := s.Clone()
	s2.Assignment[2] = 0
	res2, err := Run(Platform{PE: CPU{SwitchTime: 0.5, SwitchCurrent: 40}}, g, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Events) != 2 {
		t.Fatalf("same-level run has %d events", len(res2.Events))
	}
}

func TestFPGAReconfigEveryTask(t *testing.T) {
	g, s := chain(t)
	res, err := Run(Platform{PE: FPGA{ReconfigTime: 1, ReconfigCurrent: 150}}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	// Reconfig before every task, including the first (bitstream load).
	kinds := make([]EventKind, len(res.Events))
	for k, e := range res.Events {
		kinds[k] = e.Kind
	}
	want := []EventKind{EventReconfig, EventExec, EventReconfig, EventExec}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for k := range want {
		if kinds[k] != want[k] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	if !almost(res.FinishTime, 7, 1e-12) {
		t.Fatalf("finish = %g", res.FinishTime)
	}
}

func TestBatteryDeathMidRun(t *testing.T) {
	g, s := chain(t)
	// Ideal model for easy arithmetic: task 1 delivers 200 by t=2; task
	// 2 delivers 40/min after. Capacity 260 dies at t = 2 + 60/40 = 3.5.
	res, err := Run(Platform{Model: battery.Ideal{}, Capacity: 260}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("battery should have died")
	}
	if !almost(res.DiedAt, 3.5, 1e-6) {
		t.Fatalf("died at %g, want 3.5", res.DiedAt)
	}
	if res.TasksCompleted != 1 {
		t.Fatalf("tasks completed = %d, want 1", res.TasksCompleted)
	}
	if !almost(res.ChargeLost, 260, 1e-6) {
		t.Fatalf("sigma at death = %g, want 260", res.ChargeLost)
	}
}

func TestInfiniteCapacityNeverDies(t *testing.T) {
	g, s := chain(t)
	res, err := Run(Platform{Capacity: math.Inf(1)}, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("infinite capacity must complete")
	}
}

func TestLifetimeUnderRepetition(t *testing.T) {
	g, s := chain(t)
	// One run delivers 320 mA·min (ideal). Capacity 1000 → 3 full runs
	// (960), dies during the 4th.
	runs, diedAt, err := LifetimeUnderRepetition(Platform{Model: battery.Ideal{}, Capacity: 1000}, g, s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("full runs = %d, want 3", runs)
	}
	if diedAt <= 15 || diedAt > 20 {
		t.Fatalf("died at %g, want within the 4th run (15, 20]", diedAt)
	}
	// The RV battery must support no more runs than ideal.
	rvRuns, _, err := LifetimeUnderRepetition(Platform{Capacity: 1000}, g, s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rvRuns > runs {
		t.Fatalf("RV supported %d runs, ideal only %d", rvRuns, runs)
	}
	if _, _, err := LifetimeUnderRepetition(Platform{}, g, s, 10); err == nil {
		t.Fatal("infinite capacity repetition should error")
	}
}

// TestSchedulerSavingsExtendLifetime is the end-to-end story of the paper:
// a better (battery-aware) schedule of the same task graph yields more
// repetitions on the same battery than the naive all-fastest schedule.
func TestSchedulerSavingsExtendLifetime(t *testing.T) {
	g := taskgraph.G2()
	naive := &sched.Schedule{Order: g.TopoOrder(), Assignment: map[int]int{}}
	slow := &sched.Schedule{Order: g.TopoOrder(), Assignment: map[int]int{}}
	for _, id := range g.TaskIDs() {
		naive.Assignment[id] = 0
		slow.Assignment[id] = 3
	}
	plat := Platform{Capacity: 60000}
	fastRuns, _, err := LifetimeUnderRepetition(plat, g, naive, 500)
	if err != nil {
		t.Fatal(err)
	}
	slowRuns, _, err := LifetimeUnderRepetition(plat, g, slow, 500)
	if err != nil {
		t.Fatal(err)
	}
	if slowRuns <= fastRuns {
		t.Fatalf("low-power schedule gave %d runs, all-fastest %d — expected more", slowRuns, fastRuns)
	}
}

func TestRunProfile(t *testing.T) {
	p := battery.Profile{{Current: 100, Duration: 5}, {Current: 0, Duration: 5}, {Current: 50, Duration: 5}}
	res, err := RunProfile(Platform{Model: battery.Ideal{}, Capacity: 1000}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Delivered: 500 by t=5, then rest, then 250 more; dies at 1000?
	// total delivered = 750 < 1000 → survives.
	if !res.Completed || res.Delivered != 750 {
		t.Fatalf("res = %+v", res)
	}
	// Tighter capacity: dies during the first interval at t=4.
	res2, err := RunProfile(Platform{Model: battery.Ideal{}, Capacity: 400}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed || !almost(res2.DiedAt, 4, 1e-6) {
		t.Fatalf("res2 = %+v", res2)
	}
	// Base current is added everywhere, including rest.
	res3, err := RunProfile(Platform{Model: battery.Ideal{}, BaseCurrent: 10}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Delivered != 750+10*15 {
		t.Fatalf("base current not added: %+v", res3)
	}
	if _, err := RunProfile(Platform{}, battery.Profile{{Current: -1, Duration: 1}}); err == nil {
		t.Fatal("invalid profile should be rejected")
	}
	if _, err := RunProfile(Platform{BaseCurrent: -2}, p); err == nil {
		t.Fatal("negative base current should be rejected")
	}
}

// TestRunProfileWithIdlePlan closes the loop between the idle extension
// and the simulator: the padded profile must survive a battery that the
// unpadded schedule kills.
func TestRunProfileWithIdlePlan(t *testing.T) {
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 900, Time: 10})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 850, Time: 10})
	b.AddEdge(1, 2)
	g := b.MustBuild()
	s := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	m := battery.NewRakhmatov(battery.DefaultBeta)
	raw := s.Profile(g)
	sigmaRaw := m.ChargeLost(raw, raw.TotalTime())
	// Insert a long interior rest and pick a capacity between the
	// padded and unpadded peaks.
	padded := battery.Profile{raw[0], {Current: 0, Duration: 60}, raw[1]}
	sigmaPadded := m.ChargeLost(padded, padded.TotalTime())
	if sigmaPadded >= sigmaRaw {
		t.Fatalf("setup: padding did not help (%g vs %g)", sigmaPadded, sigmaRaw)
	}
	capacity := (sigmaPadded + sigmaRaw) / 2
	dead, err := RunProfile(Platform{Model: m, Capacity: capacity}, raw)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := RunProfile(Platform{Model: m, Capacity: capacity}, padded)
	if err != nil {
		t.Fatal(err)
	}
	if dead.Completed || !alive.Completed {
		t.Fatalf("expected raw to die and padded to survive: %+v vs %+v", dead, alive)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EventExec, EventSwitch, EventReconfig, EventIdle, EventKind(99)} {
		if k.String() == "" {
			t.Fatal("EventKind strings must be non-empty")
		}
	}
	if (CPU{}).Name() == "" || (FPGA{}).Name() == "" {
		t.Fatal("PE names must be non-empty")
	}
}

package wire

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// decodeAndResolve is the full decode-time gate every front end runs:
// strict parse, then validation + graph resolution in ToEngine.
func decodeAndResolve(line string) error {
	j, err := DecodeJob([]byte(line))
	if err != nil {
		return err
	}
	_, err = j.ToEngine()
	return err
}

// TestDecodeJobRejectsBadInput is the decode-time gate: malformed JSON,
// non-finite numbers and invalid graphs must all fail with a clear
// error before any scheduling work starts.
func TestDecodeJobRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		line string
		want string // substring of the error, "" = must succeed
	}{
		{"ok fixture", `{"fixture":"g3","deadline":230}`, ""},
		{"ok inline graph", `{"graph":{"tasks":[{"id":1,"points":[{"current":10,"time":1}]}]},"deadline":5}`, ""},
		{"malformed json", `this is not json`, "invalid character"},
		{"unknown field", `{"fixture":"g3","deadline":230,"bogus":1}`, "unknown field"},
		{"NaN deadline", `{"fixture":"g3","deadline":NaN}`, "invalid character"},
		{"Inf deadline", `{"fixture":"g3","deadline":Infinity}`, "invalid character"},
		{"overflowing deadline", `{"fixture":"g3","deadline":1e999}`, ""}, // error text differs by Go version; checked below
		{"zero deadline", `{"fixture":"g3","deadline":0}`, "must be positive"},
		{"negative deadline", `{"fixture":"g3","deadline":-5}`, "must be positive"},
		{"missing deadline", `{"fixture":"g3"}`, "must be positive"},
		{"negative beta", `{"fixture":"g3","deadline":230,"beta":-0.1}`, "\"beta\""},
		{"negative restarts", `{"fixture":"g3","deadline":230,"restarts":-1}`, "\"restarts\""},
		{"restarts over cap", `{"fixture":"g3","deadline":230,"restarts":2000000000}`, "\"restarts\""},
		{"restart_workers over cap", `{"fixture":"g3","deadline":230,"restart_workers":100000}`, "\"restart_workers\""},
		{"negative timeout_ms", `{"fixture":"g3","deadline":230,"timeout_ms":-1}`, "\"timeout_ms\""},
		{"timeout_ms over cap", `{"fixture":"g3","deadline":230,"timeout_ms":18446744073710}`, "\"timeout_ms\""},
		{"ok timeout_ms", `{"fixture":"g3","deadline":230,"timeout_ms":1500}`, ""},
		{"both graph and fixture", `{"fixture":"g3","graph":{"tasks":[]},"deadline":230}`, "both"},
		{"neither graph nor fixture", `{"deadline":230}`, "needs a"},
		{"negative current", `{"graph":{"tasks":[{"id":1,"points":[{"current":-10,"time":1}]}]},"deadline":5}`, "current must be finite and non-negative"},
		{"zero time", `{"graph":{"tasks":[{"id":1,"points":[{"current":10,"time":0}]}]},"deadline":5}`, "time must be finite and positive"},
		{"trailing data", `{"fixture":"g3","deadline":230}{"fixture":"g2","deadline":75}`, "trailing data"},
		{"ok battery kibam", `{"fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`, ""},
		{"ok battery ideal", `{"fixture":"g3","deadline":230,"battery":{"kind":"ideal"}}`, ""},
		{"ok battery calibrated", `{"fixture":"g3","deadline":230,"battery":{"kind":"calibrated","observations":[{"current":100,"lifetime":478},{"current":200,"lifetime":228.9}]}}`, ""},
		{"battery missing kind", `{"fixture":"g3","deadline":230,"battery":{}}`, "missing \"kind\""},
		{"battery unknown kind", `{"fixture":"g3","deadline":230,"battery":{"kind":"fluxcap"}}`, "unknown spec kind"},
		{"battery unknown field", `{"fixture":"g3","deadline":230,"battery":{"kind":"ideal","volts":3.3}}`, "unknown field"},
		{"battery negative beta", `{"fixture":"g3","deadline":230,"battery":{"kind":"rakhmatov","beta":-0.2}}`, "\"beta\""},
		{"battery overflowing beta", `{"fixture":"g3","deadline":230,"battery":{"kind":"rakhmatov","beta":1e999}}`, ""}, // decode-time range error; text varies
		{"battery kibam bad rate", `{"fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":-0.1}}`, "\"rate_constant\""},
		{"battery foreign param", `{"fixture":"g3","deadline":230,"battery":{"kind":"ideal","beta":0.3}}`, "does not take parameter"},
		{"battery and beta", `{"fixture":"g3","deadline":230,"beta":0.3,"battery":{"kind":"ideal"}}`, "both \"beta\" and \"battery\""},
	} {
		err := decodeAndResolve(tc.line)
		overflowing := strings.Contains(tc.name, "overflowing")
		if tc.want == "" && !overflowing {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if overflowing {
			if err == nil {
				t.Errorf("%s: error expected (decode-time range or finiteness check)", tc.name)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateCatchesNonFiniteProgrammatic covers NaN/Inf injected via
// the Go API, which strict JSON cannot carry.
func TestValidateCatchesNonFiniteProgrammatic(t *testing.T) {
	spec := taskgraph.G2().ToSpec("g2")
	for _, tc := range []struct {
		name string
		job  Job
		want string
	}{
		{"NaN deadline", Job{Fixture: "g3", Deadline: math.NaN()}, "finite"},
		{"+Inf deadline", Job{Fixture: "g3", Deadline: math.Inf(1)}, "finite"},
		{"-Inf deadline", Job{Fixture: "g3", Deadline: math.Inf(-1)}, "finite"},
		{"NaN beta", Job{Fixture: "g3", Deadline: 230, Beta: math.NaN()}, "\"beta\""},
		{"Inf beta", Job{Fixture: "g3", Deadline: 230, Beta: math.Inf(1)}, "\"beta\""},
		{"NaN spec beta", Job{Fixture: "g3", Deadline: 230,
			Battery: &battery.Spec{Kind: battery.KindRakhmatov, Beta: math.NaN()}}, "\"beta\""},
		{"Inf spec capacity", Job{Fixture: "g3", Deadline: 230,
			Battery: &battery.Spec{Kind: battery.KindKiBaM, Capacity: math.Inf(1), WellFraction: 0.5, RateConstant: 0.1}}, "\"capacity\""},
		{"NaN spec observation", Job{Fixture: "g3", Deadline: 230,
			Battery: &battery.Spec{Kind: battery.KindCalibrated, Observations: []battery.Observation{
				{Current: math.NaN(), Lifetime: 478}, {Current: 200, Lifetime: 228.9}}}}, "observation 0"},
	} {
		err := tc.job.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// A NaN current in an inline graph is caught when ToEngine builds
	// the graph (the taskgraph builder owns the point rules).
	bad := spec
	bad.Tasks = append([]taskgraph.TaskSpec(nil), spec.Tasks...)
	pts := append([]taskgraph.PointSpec(nil), bad.Tasks[0].Points...)
	pts[0].Current = math.NaN()
	bad.Tasks[0] = taskgraph.TaskSpec{ID: bad.Tasks[0].ID, Points: pts, Parents: bad.Tasks[0].Parents}
	_, err := Job{Graph: &bad, Deadline: 75}.ToEngine()
	if err == nil || !strings.Contains(err.Error(), "current must be finite") {
		t.Errorf("NaN current: err = %v, want current error", err)
	}
}

// TestToEngineResolvesGraphs checks the fixture and inline paths and the
// strategy gate.
func TestToEngineResolvesGraphs(t *testing.T) {
	job, err := (Job{Fixture: "G2", Deadline: 75}).ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	if job.Graph == nil || job.Graph.N() != taskgraph.G2().N() {
		t.Fatalf("fixture graph not resolved: %+v", job)
	}

	spec := taskgraph.G3().ToSpec("inline")
	job, err = (Job{Graph: &spec, Deadline: 230, Strategy: "multistart", Restarts: 4, Seed: 9}).ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	if job.Graph == nil || job.Graph.N() != 15 || job.MultiStart.Restarts != 4 {
		t.Fatalf("inline graph not resolved: %+v", job)
	}

	if _, err := (Job{Fixture: "g2", Deadline: 75, Strategy: "nonsense"}).ToEngine(); err == nil {
		t.Fatal("unknown strategy must be rejected at decode time")
	}
	if _, err := (Job{Fixture: "nope", Deadline: 75}).ToEngine(); err == nil {
		t.Fatal("unknown fixture must be rejected")
	}

	job, err = (Job{Fixture: "g2", Deadline: 75, TimeoutMS: 250}).ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	if job.Timeout != 250*time.Millisecond {
		t.Fatalf("timeout_ms not resolved: %v", job.Timeout)
	}
}

// TestToEngineForwardsBattery: a wire battery spec rides into the
// engine job's options and the resulting job is executable end to end.
func TestToEngineForwardsBattery(t *testing.T) {
	spec := battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
	job, err := (Job{Fixture: "g3", Deadline: 230, Battery: &spec}).ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	if job.Options.Battery == nil || job.Options.Battery.Kind != battery.KindKiBaM {
		t.Fatalf("battery spec not forwarded: %+v", job.Options)
	}
	res := engine.RunBatch([]engine.Job{job}, 1)[0]
	if res.Err != nil {
		t.Fatalf("kibam job failed: %v", res.Err)
	}
	// The cost differs from the default Rakhmatov battery's — the spec
	// actually reached the cost function.
	def, err := (Job{Fixture: "g3", Deadline: 230}).ToEngine()
	if err != nil {
		t.Fatal(err)
	}
	defRes := engine.RunBatch([]engine.Job{def}, 1)[0]
	if defRes.Err != nil {
		t.Fatal(defRes.Err)
	}
	if res.Cost == defRes.Cost {
		t.Fatalf("kibam cost %g equals default cost — spec ignored", res.Cost)
	}
}

// TestFromEngineCanceledCode: a canceled job converts with the machine-
// readable "canceled" code; ordinary failures and successes carry none.
func TestFromEngineCanceledCode(t *testing.T) {
	canceled := FromEngine(3, engine.Result{Name: "x", Err: fmt.Errorf("%w: context canceled", engine.ErrCanceled)})
	if canceled.Code != CodeCanceled || canceled.Error == "" || canceled.Index != 3 {
		t.Fatalf("canceled result converted wrong: %+v", canceled)
	}
	plain := FromEngine(0, engine.Result{Err: errors.New("boom")})
	if plain.Code != "" {
		t.Fatalf("ordinary failure must carry no code: %+v", plain)
	}
	ok := FromEngine(0, engine.RunBatch([]engine.Job{{Graph: taskgraph.G2(), Deadline: 75}}, 1)[0])
	if ok.Code != "" || ok.Error != "" {
		t.Fatalf("success must carry no code: %+v", ok)
	}
}

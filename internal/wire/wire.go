// Package wire defines the JSON wire schemas shared by every front end
// of the batch engine: the battbatch CLI and the battschedd HTTP server
// both speak exactly this vocabulary, so a job line that works piped
// into battbatch works verbatim as a battschedd request body (and vice
// versa), and the two front ends cannot drift apart.
//
// A Job is one scheduling request — a graph (by fixture name or inline
// spec), a deadline, a strategy and its knobs. A Result is one outcome —
// either a schedule with its battery cost or an "error" string. Units
// follow the rest of the repository: currents in mA, times and deadlines
// in minutes, charge in mA·min (see docs/API.md for the full schema
// reference).
//
// Decoding is strict: unknown fields and trailing data are rejected,
// and non-finite or non-positive numbers (NaN/Inf deadlines, negative
// currents, …) are caught at decode time — Job.Validate checks the job
// fields, the taskgraph builder checks inline graph content — with an
// error naming the offending field, before any scheduling work starts.
//
//battlint:deterministic
package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// Job is the JSON schema of one scheduling request: one NDJSON line of
// battbatch / POST /v1/batch, or the whole body of POST /v1/schedule.
type Job struct {
	// Name optionally labels the job; it is echoed in the Result.
	Name string `json:"name,omitempty"`
	// Fixture names a built-in paper graph (g2 | g3). Mutually
	// exclusive with Graph; exactly one must be set.
	Fixture string `json:"fixture,omitempty"`
	// Graph is an inline task graph in the taskgen/battsched JSON
	// schema.
	Graph *taskgraph.Spec `json:"graph,omitempty"`
	// Deadline is the completion deadline in minutes (finite, > 0).
	Deadline float64 `json:"deadline"`
	// Strategy selects the algorithm; empty means "iterative". See
	// engine.Strategies for the accepted names.
	Strategy string `json:"strategy,omitempty"`
	// Beta overrides the Rakhmatov diffusion parameter (0 = paper's
	// 0.273 min^-1/2). Mutually exclusive with Battery, which subsumes
	// it ({"beta":b} ≡ {"battery":{"kind":"rakhmatov","beta":b}}, down
	// to sharing a cache entry).
	Beta float64 `json:"beta,omitempty"`
	// Battery declaratively selects the battery model the job is
	// costed under: a kind (rakhmatov | ideal | peukert | kibam |
	// calibrated) plus that kind's validated numeric parameters (see
	// battery.Spec and docs/API.md). Absent means the paper's default
	// Rakhmatov configuration. Spec jobs are fully cacheable — the
	// canonical spec bytes are part of the result cache key.
	Battery *battery.Spec `json:"battery,omitempty"`
	// Approx enables the scheduler's documented approximation mode for
	// the iterative strategies: a per-decision suitability tolerance in
	// [0, 16] B-units (see core.Options.Approx). 0 — the default — is
	// exact mode, bit-identical to the paper's algorithm. Approx changes
	// results, so it is part of the cache key: approximate and exact
	// runs of the same job never share an entry.
	Approx float64 `json:"approx,omitempty"`
	// Restarts/Seed/RestartWorkers configure the multistart strategy;
	// RestartWorkers 0 inherits the runner's worker bound.
	Restarts       int   `json:"restarts,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	RestartWorkers int   `json:"restart_workers,omitempty"`
	// TimeoutMS bounds this job's computation in milliseconds once it
	// starts (0 = unbounded). A job that exceeds it fails with the
	// "canceled" result code; jobs that finish in time are unaffected,
	// so the field never changes a completed result's bytes.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority orders the job in the async queue (POST /v1/jobs and the
	// batch/stream variants): 0–9, higher runs earlier, FIFO within a
	// level. The sync endpoints accept and ignore it — there is no queue
	// to order. Result-neutral, so it is excluded from the cache key and
	// coalesced submissions of the same job may carry different
	// priorities (the job runs at the highest of them).
	Priority int `json:"priority,omitempty"`
	// TTLMS bounds the job's whole async lifetime in milliseconds —
	// queue wait plus computation, counted from submission (0 inherits
	// the server's default TTL, which is unbounded unless configured).
	// A job that exceeds it lands in the "expired" terminal state. Distinct from TimeoutMS, which starts only when computation
	// does; sync endpoints ignore TTLMS (their wait is the open
	// connection itself). Like Priority it is result-neutral and
	// excluded from the cache key.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// Result is the JSON schema of one scheduling outcome: one NDJSON line
// of battbatch / POST /v1/batch output, or the whole body of a POST
// /v1/schedule response. Exactly one of {Order+Assignment, Error} is
// populated.
type Result struct {
	// Index is the job's position in its batch (0 for single requests).
	Index int `json:"index"`
	// Name echoes Job.Name.
	Name string `json:"name,omitempty"`
	// Strategy is the canonical strategy name that ran.
	Strategy string `json:"strategy,omitempty"`
	// Cost is sigma at completion under the job's battery model, mA·min.
	Cost float64 `json:"cost,omitempty"`
	// Duration is the schedule completion time, minutes.
	Duration float64 `json:"duration,omitempty"`
	// Energy is the delivered charge, mA·min.
	Energy float64 `json:"energy,omitempty"`
	// Iterations is the outer-loop iteration count (iterative
	// strategies only).
	Iterations int `json:"iterations,omitempty"`
	// Order lists task IDs in execution order.
	Order []int `json:"order,omitempty"`
	// Assignment maps task ID to its 0-based design point index.
	Assignment map[int]int `json:"assignment,omitempty"`
	// IdleTotal/IdleCost report the recovery-rest plan (strategy
	// "withidle" only): total rest minutes and padded-schedule sigma.
	IdleTotal float64 `json:"idle_total,omitempty"`
	IdleCost  float64 `json:"idle_cost,omitempty"`
	// Error is the job failure, empty on success.
	//
	// Note there is deliberately no "served from cache" field: result
	// bodies are byte-identical whether computed or cached (battschedd
	// reports cache status out of band, via X-Cache headers).
	Error string `json:"error,omitempty"`
	// Code classifies the failure machine-readably. The only value
	// today is CodeCanceled — the job was cut short by a client
	// disconnect, a server shutdown or its timeout_ms budget — which
	// callers should treat as retryable, unlike a deterministic
	// scheduling failure (whose Error is all there is).
	Code string `json:"code,omitempty"`
}

// CodeCanceled is the Result.Code of a job that did not complete
// because its request was canceled or its timeout_ms budget expired.
const CodeCanceled = "canceled"

// Async-only result codes: a job result line streamed from the async
// endpoints can additionally report that the job left the queue without
// a result. Like CodeCanceled both are retryable — nothing
// deterministic failed.
const (
	// CodeExpired marks a job whose ttl_ms lapsed before completion.
	CodeExpired = "expired"
	// CodeAborted marks a job aborted by DELETE /v1/jobs/{id} or a
	// server drain.
	CodeAborted = "aborted"
)

// JobStatus is the JSON schema of one async job's lifecycle snapshot:
// the body of POST /v1/jobs and GET /v1/jobs/{id} responses (and one
// line of the POST /v1/jobs/batch response array). The embedded Result
// appears only in a terminal state and carries exactly the bytes the
// sync endpoints would have produced for the same job.
type JobStatus struct {
	// ID is the job's content-addressed identity — the SHA-256 cache key
	// of the canonical request, so resubmitting the same job yields the
	// same ID and coalesces onto the same computation.
	ID string `json:"id"`
	// State is the lifecycle state: queued | running | done | expired |
	// aborted. done/expired/aborted are terminal. Empty only in a batch
	// response entry for a line that was never admitted (its Error says
	// why).
	State string `json:"state,omitempty"`
	// Priority echoes the effective queue priority (the highest of the
	// coalesced submissions').
	Priority int `json:"priority,omitempty"`
	// Name echoes the submission's job name.
	Name string `json:"name,omitempty"`
	// Result is the job outcome, present only in state "done" (it may
	// still describe a deterministic scheduling failure via its Error
	// field). Expired/aborted jobs carry no result.
	Result *Result `json:"result,omitempty"`
	// Error describes why a job ended without a result ("expired",
	// "aborted", …); empty for queued/running/done.
	Error string `json:"error,omitempty"`
}

// Job lifecycle states, as serialized in JobStatus.State.
const (
	StateQueued  = "queued"  // admitted, waiting for a worker
	StateRunning = "running" // computing (or joined on an identical in-flight computation)
	StateDone    = "done"    // terminal: result available (success or deterministic failure)
	StateExpired = "expired" // terminal: ttl_ms elapsed before completion
	StateAborted = "aborted" // terminal: DELETE /v1/jobs/{id} or server drain
)

// Ready is the JSON schema of the GET /readyz response: the readiness
// verdict, distinct from /healthz liveness. A process can be alive and
// still not fully ready — the disk tier tripped its circuit breaker
// (degraded: serving continues memory-only), or a drain has begun
// (draining: stop sending traffic).
type Ready struct {
	// Status is the aggregate verdict: ok | degraded | draining.
	// ok and degraded are served with HTTP 200 (the process accepts
	// traffic); draining with 503.
	Status string `json:"status"`
	// Subsystems details each readiness input by name (e.g. "disk",
	// "queue").
	Subsystems map[string]ReadySubsystem `json:"subsystems"`
}

// ReadySubsystem is one subsystem's readiness detail inside Ready.
type ReadySubsystem struct {
	// Status is ok | degraded | draining | disabled (disabled:
	// the subsystem is configured off — e.g. no disk tier attached —
	// which never degrades the aggregate).
	Status string `json:"status"`
	// Detail is a human-readable explanation ("breaker open", …).
	Detail string `json:"detail,omitempty"`
}

// Ready statuses, aggregate and per-subsystem.
const (
	ReadyOK       = "ok"
	ReadyDegraded = "degraded"
	ReadyDraining = "draining"
	ReadyDisabled = "disabled"
)

// MaxRestarts and MaxRestartWorkers bound the multistart knobs a wire
// job may request. Every restart runs the full algorithm and the worker
// count sizes real allocations, so without a ceiling one small request
// could pin or OOM a serving host; the bounds are far above any useful
// search budget.
const (
	MaxRestarts       = 4096
	MaxRestartWorkers = 256
)

// MaxTimeoutMS bounds timeout_ms and ttl_ms at 24 hours. The conversion
// to time.Duration multiplies by a million, so an unbounded field would
// let a hostile value overflow int64 — wrapping to a near-zero budget
// (every job instantly canceled) or a negative one (the budget
// silently ignored). Far above any useful compute budget.
const MaxTimeoutMS = 24 * 60 * 60 * 1000

// MaxPriority bounds the async queue priority field; priorities are
// small ordinal levels, not an unbounded score.
const MaxPriority = 9

// DecodeJob strictly parses one JSON job: unknown fields and trailing
// data after the object are rejected, so a concatenated or truncated
// request cannot silently lose half its payload. Validation and graph
// resolution happen once, in ToEngine.
func DecodeJob(data []byte) (Job, error) {
	var j Job
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return j, err
	}
	if dec.More() {
		return j, fmt.Errorf("job %s: trailing data after the job object", j.label())
	}
	return j, nil
}

// DecodeJobs reads an NDJSON job stream: one job per non-blank line,
// decoded and resolved into engine jobs. Every non-blank line claims
// one slot in the returned slices; a line that fails to decode or
// validate keeps its slot with a zero-value placeholder job (which the
// engine rejects instantly on its nil graph) and its error in errs —
// so batch front ends report the decode error for exactly that line
// without aborting the rest. names echoes each line's "name" field.
// The only stream-level failure is a scanner error on r.
func DecodeJobs(r io.Reader) (jobs []engine.Job, names []string, errs []error, err error) {
	wjobs, jobs, errs, err := DecodeJobsFull(r)
	if err != nil {
		return nil, nil, nil, err
	}
	names = make([]string, len(wjobs))
	for i := range wjobs {
		names[i] = wjobs[i].Name
	}
	return jobs, names, errs, nil
}

// DecodeJobsFull is DecodeJobs keeping the decoded wire jobs too, for
// front ends that need the wire-only fields an engine job does not
// carry (the async queue's priority and ttl_ms). The slices are
// parallel; a line that failed to decode holds zero-value placeholders
// in both job slices and its error in errs.
func DecodeJobsFull(r io.Reader) (wjobs []Job, jobs []engine.Job, errs []error, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // inline graphs can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ejob engine.Job
		job, perr := DecodeJob(line)
		if perr == nil {
			ejob, perr = job.ToEngine()
		}
		wjobs = append(wjobs, job)
		jobs = append(jobs, ejob)
		errs = append(errs, perr)
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, nil, fmt.Errorf("reading jobs: %w", serr)
	}
	return wjobs, jobs, errs, nil
}

// finite reports whether v is an ordinary number (not NaN, not ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every numeric field for finiteness and sign, and the
// fixture/graph exclusivity rule, returning an error that names the
// offending field. It does not build the graph (ToEngine does).
func (j Job) Validate() error {
	switch {
	case !finite(j.Deadline):
		return fmt.Errorf("job %s: \"deadline\" must be a finite number, got %g", j.label(), j.Deadline)
	case j.Deadline <= 0:
		return fmt.Errorf("job %s: \"deadline\" must be positive, got %g", j.label(), j.Deadline)
	case !finite(j.Beta) || j.Beta < 0:
		return fmt.Errorf("job %s: \"beta\" must be a finite non-negative number, got %g", j.label(), j.Beta)
	case j.Beta != 0 && j.Battery != nil:
		return fmt.Errorf("job %s: has both \"beta\" and \"battery\" (use battery.beta)", j.label())
	case !finite(j.Approx) || j.Approx < 0 || j.Approx > core.MaxApprox:
		return fmt.Errorf("job %s: \"approx\" must be a finite number in [0, %d], got %g", j.label(), core.MaxApprox, j.Approx)
	case j.Restarts < 0 || j.Restarts > MaxRestarts:
		return fmt.Errorf("job %s: \"restarts\" must be in [0, %d], got %d", j.label(), MaxRestarts, j.Restarts)
	case j.RestartWorkers < 0 || j.RestartWorkers > MaxRestartWorkers:
		return fmt.Errorf("job %s: \"restart_workers\" must be in [0, %d], got %d", j.label(), MaxRestartWorkers, j.RestartWorkers)
	case j.TimeoutMS < 0 || j.TimeoutMS > MaxTimeoutMS:
		return fmt.Errorf("job %s: \"timeout_ms\" must be in [0, %d], got %d", j.label(), MaxTimeoutMS, j.TimeoutMS)
	case j.Priority < 0 || j.Priority > MaxPriority:
		return fmt.Errorf("job %s: \"priority\" must be in [0, %d], got %d", j.label(), MaxPriority, j.Priority)
	case j.TTLMS < 0 || j.TTLMS > MaxTimeoutMS:
		return fmt.Errorf("job %s: \"ttl_ms\" must be in [0, %d], got %d", j.label(), MaxTimeoutMS, j.TTLMS)
	case j.Fixture != "" && j.Graph != nil:
		return fmt.Errorf("job %s: has both \"fixture\" and \"graph\"", j.label())
	case j.Fixture == "" && j.Graph == nil:
		return fmt.Errorf("job %s: needs a \"fixture\" or an inline \"graph\"", j.label())
	}
	if j.Battery != nil {
		// The battery package owns the per-kind parameter rules; its
		// errors already name the offending field.
		if err := j.Battery.Validate(); err != nil {
			return fmt.Errorf("job %s: \"battery\": %w", j.label(), err)
		}
	}
	// Inline graph content (finite positive times, finite non-negative
	// currents, acyclic edges, …) is validated by taskgraph's Builder
	// when ToEngine resolves the spec — one copy of those rules, one
	// error vocabulary.
	return nil
}

// label identifies the job in error messages.
func (j Job) label() string {
	if j.Name != "" {
		return fmt.Sprintf("%q", j.Name)
	}
	return "(unnamed)"
}

// ToEngine validates the job and resolves its graph into an engine job.
// It is the conversion boundary the wire schema exists for, so battlint
// checks that every exported wire.Job field is read here: a field this
// function drops is a knob the API silently ignores.
//
//battlint:canonical Job
func (j Job) ToEngine() (engine.Job, error) {
	job := engine.Job{
		Name:     j.Name,
		Deadline: j.Deadline,
		Strategy: j.Strategy,
		Options:  core.Options{Beta: j.Beta, Battery: j.Battery, Approx: j.Approx},
		MultiStart: core.MultiStartOptions{
			Restarts: j.Restarts,
			Seed:     j.Seed,
			Workers:  j.RestartWorkers,
		},
		Timeout: time.Duration(j.TimeoutMS) * time.Millisecond,
	}
	if err := j.Validate(); err != nil {
		return job, err
	}
	if _, err := engine.CanonicalStrategy(j.Strategy); err != nil {
		return job, err
	}
	if j.Fixture != "" {
		g, _, err := taskgraph.Fixture(j.Fixture)
		if err != nil {
			return job, err
		}
		job.Graph = g
		return job, nil
	}
	g, err := taskgraph.FromSpec(*j.Graph)
	if err != nil {
		return job, fmt.Errorf("job %s: %w", j.label(), err)
	}
	job.Graph = g
	return job, nil
}

// FromEngine converts an engine result into its wire form. index is the
// job's position in the request batch (engine.Result.Index is ignored so
// cached results, which are stored request-neutral, convert correctly).
func FromEngine(index int, res engine.Result) Result {
	out := Result{Index: index, Name: res.Name, Strategy: res.Strategy}
	if res.Err != nil {
		out.Error = res.Err.Error()
		if errors.Is(res.Err, engine.ErrCanceled) {
			out.Code = CodeCanceled
		}
		return out
	}
	out.Cost = res.Cost
	out.Duration = res.Duration
	out.Energy = res.Energy
	out.Iterations = res.Iterations
	out.Order = res.Schedule.Order
	out.Assignment = res.Schedule.Assignment
	if res.Idle != nil {
		out.IdleTotal = res.Idle.TotalIdle()
		out.IdleCost = res.Idle.Cost
	}
	return out
}

// ErrorResult builds the wire form of a request that never reached the
// engine (a parse or validation failure).
func ErrorResult(index int, name string, err error) Result {
	return Result{Index: index, Name: name, Error: err.Error()}
}

// Results converts a batch run back to the wire, in input order: lines
// that failed decoding (per DecodeJobs) report their own decode error,
// the rest carry their engine result. It is the inverse bookend of
// DecodeJobs, shared by every batch front end so their output lines
// cannot drift apart. The three slices must be parallel.
func Results(results []engine.Result, names []string, errs []error) []Result {
	out := make([]Result, len(results))
	for i, res := range results {
		if errs[i] != nil {
			out[i] = ErrorResult(i, names[i], errs[i])
		} else {
			out[i] = FromEngine(i, res)
		}
	}
	return out
}

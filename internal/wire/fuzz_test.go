package wire

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeJobs hammers the NDJSON batch decoder with arbitrary bytes.
// Invariants under fuzz:
//
//   - no panic, whatever the input;
//   - the three outputs stay parallel (one slot per non-blank line);
//   - a slot without an error holds a fully resolved job — non-nil
//     graph, positive finite deadline, canonical bounds respected —
//     because front ends hand exactly these to the engine unchecked;
//   - a slot with an error holds the zero placeholder job (nil graph),
//     which the engine rejects instantly;
//   - a slot without an error never carries an invalid battery spec —
//     negative/out-of-domain parameters, foreign parameters and unknown
//     kinds are all structured decode errors, never panics (NaN/Inf
//     literals cannot even parse as JSON; overflowing numbers like
//     1e999 fail at decode time).
//
// The seed corpus is real traffic: fixture jobs for every strategy and
// battery-spec kind, an inline graph built from testdata/g2.json, and
// the malformed shapes the decode tests pin down.
func FuzzDecodeJobs(f *testing.F) {
	f.Add([]byte(`{"fixture":"g3","deadline":230}`))
	f.Add([]byte(`{"name":"a","fixture":"g2","deadline":75,"strategy":"rv-dp"}` + "\n" +
		`{"name":"b","fixture":"g3","deadline":230,"strategy":"multistart","restarts":4,"seed":7}` + "\n" +
		"\n" +
		`{"name":"c","fixture":"g3","deadline":230,"strategy":"withidle","timeout_ms":1000}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"fixture":"g3","deadline":-1}` + "\n" + `{"deadline":230}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230}{"fixture":"g2","deadline":75}`))
	f.Add([]byte(`{"graph":{"tasks":[{"id":1,"points":[{"current":10,"time":1}]}]},"deadline":5}`))
	// Battery specs: every kind valid once, plus the rejection shapes
	// (unknown kind, negative/overflowing/foreign parameters, beta
	// conflict, malformed observations).
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"rakhmatov","beta":0.35,"terms":12}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"ideal"}}` + "\n" +
		`{"fixture":"g3","deadline":230,"battery":{"kind":"peukert","exponent":1.2,"ref_current":100}}` + "\n" +
		`{"fixture":"g2","deadline":75,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"calibrated","observations":[{"current":100,"lifetime":478},{"current":200,"lifetime":228.9}]}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"fluxcap"}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"rakhmatov","beta":-1}}` + "\n" +
		`{"fixture":"g3","deadline":230,"battery":{"kind":"rakhmatov","beta":1e999}}` + "\n" +
		`{"fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":100,"well_fraction":2,"rate_constant":-0.1}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"ideal","beta":0.3}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"beta":0.3,"battery":{"kind":"ideal"}}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"battery":{"kind":"calibrated","observations":[{"current":100,"lifetime":478}]}}`))
	// Async queue fields: valid priority/ttl_ms combinations, both
	// bounds, and the rejection shapes (negative, over-limit,
	// overflow-bait values the int64→Duration conversion must never
	// see).
	f.Add([]byte(`{"fixture":"g3","deadline":230,"priority":9,"ttl_ms":5000}` + "\n" +
		`{"fixture":"g2","deadline":75,"priority":1}` + "\n" +
		`{"fixture":"g3","deadline":230,"ttl_ms":86400000}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"priority":-1}` + "\n" +
		`{"fixture":"g3","deadline":230,"priority":10}` + "\n" +
		`{"fixture":"g3","deadline":230,"priority":2147483647}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"ttl_ms":-5}` + "\n" +
		`{"fixture":"g3","deadline":230,"ttl_ms":86400001}` + "\n" +
		`{"fixture":"g3","deadline":230,"ttl_ms":9223372036854775807}`))
	f.Add([]byte(`{"fixture":"g3","deadline":230,"priority":3,"ttl_ms":1000,"timeout_ms":500,"strategy":"multistart","restarts":2}`))
	// An inline-graph job line assembled from the shared fixture file.
	if spec, err := os.ReadFile(filepath.Join("..", "..", "testdata", "g2.json")); err == nil {
		var compact bytes.Buffer
		if json.Compact(&compact, spec) == nil {
			f.Add([]byte(`{"graph":` + compact.String() + `,"deadline":75}`))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, names, errs, err := DecodeJobs(bytes.NewReader(data))
		if err != nil {
			if jobs != nil || names != nil || errs != nil {
				t.Fatalf("stream-level failure must return nil slices, got %d/%d/%d", len(jobs), len(names), len(errs))
			}
			return
		}
		if len(jobs) != len(names) || len(jobs) != len(errs) {
			t.Fatalf("outputs not parallel: %d jobs, %d names, %d errs", len(jobs), len(names), len(errs))
		}
		for i := range jobs {
			if errs[i] != nil {
				if jobs[i].Graph != nil {
					t.Fatalf("line %d: failed decode kept a graph", i)
				}
				continue
			}
			j := jobs[i]
			if j.Graph == nil {
				t.Fatalf("line %d: clean decode without a graph", i)
			}
			if !finite(j.Deadline) || j.Deadline <= 0 {
				t.Fatalf("line %d: clean decode with deadline %g", i, j.Deadline)
			}
			if j.MultiStart.Restarts < 0 || j.MultiStart.Restarts > MaxRestarts ||
				j.MultiStart.Workers < 0 || j.MultiStart.Workers > MaxRestartWorkers {
				t.Fatalf("line %d: multistart knobs out of bounds: %+v", i, j.MultiStart)
			}
			if j.Timeout < 0 {
				t.Fatalf("line %d: negative timeout %v", i, j.Timeout)
			}
			if j.Options.Battery != nil {
				if verr := j.Options.Battery.Validate(); verr != nil {
					t.Fatalf("line %d: clean decode carries an invalid battery spec: %v", i, verr)
				}
			}
		}
	})
}

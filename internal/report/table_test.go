package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Headers: []string{"A", "B"},
	}
	t.AddRow("x", 1.5)
	t.AddRow("yy", "z,w")
	t.Notes = append(t.Notes, "a note")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Sample" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A ") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "--") {
		t.Fatalf("separator line = %q", lines[2])
	}
	// Column alignment: "yy" is the widest A cell, so "x" pads to width 2.
	if !strings.HasPrefix(lines[3], "x   ") {
		t.Fatalf("row line = %q", lines[3])
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("missing note:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Sample", "| A | B |", "| --- | --- |", "| x | 1.5 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"z,w\"") {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if strings.Contains(out, "Sample") {
		t.Fatal("CSV should not carry the title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "A,B" {
		t.Fatalf("CSV = %q", out)
	}
	// Quote escaping.
	q := &Table{Headers: []string{"A"}}
	q.AddRow(`say "hi"`)
	buf.Reset()
	if err := q.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"say ""hi"""`) {
		t.Fatalf("quote escaping wrong: %q", buf.String())
	}
}

func TestFormatters(t *testing.T) {
	if F1(228.34) != "228.3" {
		t.Fatalf("F1 = %q", F1(228.34))
	}
	if F0(16353.47) != "16353" {
		t.Fatalf("F0 = %q", F0(16353.47))
	}
	if Pct(15.62) != "15.6" {
		t.Fatalf("Pct = %q", Pct(15.62))
	}
	if Seq([]int{1, 4, 15}) != "T1,T4,T15" {
		t.Fatalf("Seq = %q", Seq([]int{1, 4, 15}))
	}
	got := DPs([]int{2, 1}, map[int]int{1: 4, 2: 0})
	if got != "P1,P5" {
		t.Fatalf("DPs = %q", got)
	}
}

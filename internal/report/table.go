// Package report renders the experiment harness's tables as aligned plain
// text, GitHub markdown, or CSV. It is intentionally tiny: headers, string
// rows, a title, and formatting helpers for the numeric conventions the
// paper uses (sigma in whole mA·min, durations with one decimal).
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of strings.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are appended under the table, one line each.
	Notes []string
}

// AddRow appends a row; values are stringified with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for k, c := range cells {
		switch v := c.(type) {
		case string:
			row[k] = v
		case float64:
			row[k] = strconv.FormatFloat(v, 'g', -1, 64)
		default:
			row[k] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for k, h := range t.Headers {
		w[k] = len(h)
	}
	for _, row := range t.Rows {
		for k, c := range row {
			if k < len(w) && len(c) > w[k] {
				w[k] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		for k, c := range cells {
			if k > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[k], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for k := range sep {
		sep[k] = strings.Repeat("-", widths[k])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for k := range sep {
		sep[k] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (headers first, no
// title). Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for k, c := range cells {
			if k > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F1 formats a float with one decimal (durations in the paper's tables).
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F0 formats a float rounded to an integer (sigma in the paper's tables).
func F0(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// Seq formats a task-ID sequence the way the paper prints them:
// "T1,T4,T5,…".
func Seq(ids []int) string {
	parts := make([]string, len(ids))
	for k, id := range ids {
		parts[k] = "T" + strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// DPs formats a positional design-point row the way the paper prints them:
// "P5,P5,P4,…" for the tasks of a sequence.
func DPs(order []int, assignment map[int]int) string {
	parts := make([]string, len(order))
	for k, id := range order {
		parts[k] = "P" + strconv.Itoa(assignment[id]+1)
	}
	return strings.Join(parts, ",")
}

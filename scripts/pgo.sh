#!/usr/bin/env bash
# pgo.sh — collect a representative CPU profile and install it as
# cmd/battschedd/default.pgo, the profile `go build ./cmd/battschedd`
# picks up automatically for profile-guided optimization.
#
# Usage:
#   scripts/pgo.sh [-n jobs] [-c clients] [-k keep.pprof]
#
#   -n jobs     submissions for the profiling run (default 2000)
#   -c clients  concurrent virtual clients (default 32)
#   -k path     also keep the raw profile at this path
#
# The workload is battload -self: an in-process battschedd driven over
# real HTTP with a deadline spread wide enough to defeat the result
# cache, so the profile carries the serving stack AND the scheduler hot
# path (internal/core's window sweep) in realistic proportion. The
# result cache is what makes -n matter: every job must differ in
# deadline or it degenerates into a cache benchmark, so the spread below
# covers the G3 feasible range densely.
#
# After refreshing default.pgo, verify the build still passes and commit
# the file — the profile is input to every future `go build`, so it is
# versioned evidence like the BENCH_*.json snapshots. Regenerate it when
# the hot path changes shape (scripts/bench_compare.sh failing after an
# intentional optimization is the usual cue).
set -euo pipefail
cd "$(dirname "$0")/.."

n=2000
c=32
keep=""
while getopts "n:c:k:h" opt; do
  case "$opt" in
    n) n="$OPTARG" ;;
    c) c="$OPTARG" ;;
    k) keep="$OPTARG" ;;
    h|*) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
  esac
done

prof=$(mktemp /tmp/battsched_pgo.XXXXXX.pprof)
trap 'rm -f "$prof"' EXIT

echo "pgo: profiling battload -self (-n $n -c $c)" >&2
go run ./cmd/battload -self -n "$n" -c "$c" \
  -deadline-min 100 -deadline-max 230 \
  -cpuprofile "$prof" >/dev/null

if [ -n "$keep" ]; then
  cp "$prof" "$keep"
  echo "pgo: raw profile kept at $keep" >&2
fi

cp "$prof" cmd/battschedd/default.pgo
echo "pgo: installed cmd/battschedd/default.pgo" >&2

# Prove the toolchain accepts the profile (a corrupt one fails the build).
go build -o /dev/null ./cmd/battschedd
echo "pgo: PGO build of cmd/battschedd OK" >&2

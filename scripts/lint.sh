#!/usr/bin/env bash
# lint.sh — the repository's whole static gate in one command:
#
#   gofmt -l             formatting
#   go vet ./...         the standard toolchain checks
#   battlint ./...       the repo-specific invariant analyzers
#                        (internal/analysis/...; see battlint -list)
#   doccheck.sh          every relative markdown link resolves
#
# Run from anywhere; CI's lint job runs exactly this script, so a clean
# local run means a green lint job. Exits non-zero after running ALL
# stages, so one failure does not hide another.
set -u

cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "lint: gofmt needed on:"
  echo "$unformatted"
  fail=1
else
  echo "lint: gofmt clean"
fi

if go vet ./...; then
  echo "lint: go vet clean"
else
  fail=1
fi

if go run ./cmd/battlint ./...; then
  echo "lint: battlint clean"
else
  fail=1
fi

if ./scripts/doccheck.sh; then
  :
else
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: all checks passed"

#!/usr/bin/env bash
# persist_smoke.sh — end-to-end smoke of battschedd's disk-backed cache
# against a real daemon over real HTTP: populate a -cache-dir, restart
# the process on the same directory, and require every repeated request
# to answer X-Cache: hit with disk_hits > 0 and zero computations
# (misses stays 0) in the second life. This is the ops-facing twin of
# TestRestartServesFromDisk — same property, real binary, real signals.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
cachedir="$workdir/cache"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/battschedd" ./cmd/battschedd

# start_daemon <logfile>: launches on an OS-assigned port, waits for the
# listen line and sets $base. The warm-start log line is the startup
# contract for -cache-dir, so require it too.
start_daemon() {
  "$workdir/battschedd" -addr 127.0.0.1:0 -cache-dir "$cachedir" -quiet 2>"$1" &
  pid=$!
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^battschedd: listening on //p' "$1")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon died at startup:"; cat "$1"; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "daemon never listened:"; cat "$1"; exit 1; }
  grep -q 'warm start from' "$1" || { echo "missing warm-start log line:"; cat "$1"; exit 1; }
  base="http://$addr"
}

stop_daemon() {
  kill -TERM "$pid"
  wait "$pid" || true
  pid=""
}

requests=(
  '{"fixture":"g3","deadline":230,"strategy":"iterative"}'
  '{"fixture":"g3","deadline":230,"strategy":"withidle"}'
  '{"fixture":"g2","deadline":55}'
)

# expect_cache <hit|miss>: every request must carry that X-Cache value.
expect_cache() {
  for body in "${requests[@]}"; do
    headers="$(curl -sS -D - -o /dev/null "$base/v1/schedule" -d "$body")"
    echo "$headers" | grep -qi "^x-cache: $1" || {
      echo "request $body: expected X-Cache: $1, got:"; echo "$headers"; exit 1
    }
  done
}

echo "== first life: populate $cachedir"
start_daemon "$workdir/first.log"
expect_cache miss
stop_daemon

echo "== second life: same directory, same requests, zero computations"
start_daemon "$workdir/second.log"
expect_cache hit
metrics="$(curl -sS "$base/metrics")"
for want in '"disk_hits":3' '"misses":0'; do
  echo "$metrics" | grep -qF "$want" || {
    echo "metrics missing $want:"; echo "$metrics"; exit 1
  }
done
stop_daemon

echo "persist smoke OK: 3 requests re-served from disk, 0 recomputed"

// Command benchjson converts `go test -bench` output into the repo's
// machine-readable benchmark snapshot format (BENCH_<date>.json): one
// entry per benchmark keyed "package:BenchmarkName", carrying the mean
// ns/op, B/op and allocs/op over however many -count samples appear, plus
// the sample count so consumers can judge stability. scripts/bench.sh is
// the canonical driver; see ARCHITECTURE.md §Performance for how the
// snapshots record the perf trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./scripts/benchjson [-o out.json]
//
// Lines that are not benchmark results (pkg/goos/cpu headers, PASS/ok)
// set context or are ignored, so raw `go test` output pipes straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark's aggregated measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Snapshot is the BENCH_<date>.json document.
type Snapshot struct {
	Generated  string           `json:"generated"`
	GoOS       string           `json:"goos,omitempty"`
	GoArch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkScalingTasks/n=80-8  61  10419264 ns/op  64640 B/op  249 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	type acc struct {
		ns, b, allocs float64
		n             int
	}
	sums := map[string]*acc{}
	snap := Snapshot{Generated: time.Now().UTC().Format(time.RFC3339), Benchmarks: map[string]Entry{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := m[1]
		if pkg != "" {
			key = pkg + ":" + m[1]
		}
		a := sums[key]
		if a == nil {
			a = &acc{}
			sums[key] = a
		}
		a.ns += mustFloat(m[2])
		if m[3] != "" {
			a.b += mustFloat(m[3])
		}
		if m[4] != "" {
			a.allocs += mustFloat(m[4])
		}
		a.n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading input:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for key, a := range sums {
		n := float64(a.n)
		snap.Benchmarks[key] = Entry{
			NsPerOp:     a.ns / n,
			BPerOp:      a.b / n,
			AllocsPerOp: a.allocs / n,
			Samples:     a.n,
		}
	}

	enc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func mustFloat(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad number %q: %v\n", s, err)
		os.Exit(1)
	}
	return f
}

#!/usr/bin/env bash
# doccheck.sh — verify that every relative link in the repository's
# markdown docs points at a file or directory that actually exists.
#
# Checked files: README.md, ARCHITECTURE.md, and everything under docs/.
# External links (http/https) and pure in-page anchors (#...) are
# skipped; a link's own anchor suffix (FILE.md#section) is stripped
# before the existence check. Run from anywhere; exits non-zero listing
# every broken link.
set -u

cd "$(dirname "$0")/.."

files=(README.md ARCHITECTURE.md)
while IFS= read -r f; do
  files+=("$f")
done < <(find docs -name '*.md' 2>/dev/null | sort)

fail=0
for md in "${files[@]}"; do
  [ -f "$md" ] || { echo "doccheck: missing doc file $md"; fail=1; continue; }
  dir=$(dirname "$md")
  # Pull out every ](target) markdown link target.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"            # strip an anchor suffix
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "doccheck: $md links to missing file: $target"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "doccheck: FAILED"
  exit 1
fi
echo "doccheck: all doc links resolve (${#files[@]} files checked)"

#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end chaos smoke against a real battschedd over
# real HTTP, in two legs:
#
#   1. Degradation: pull the disk tier out from under a running daemon
#      (the -cache-dir directory becomes a plain file, so every disk op
#      fails ENOTDIR — root-proof, unlike chmod). The daemon must stay
#      up, trip its circuit breaker, report /readyz "degraded" while
#      still serving memory hits, then recover to "ok" on its own once
#      the volume comes back and a half-open probe succeeds.
#
#   2. Crash: SIGKILL the daemon in the middle of a resilient battload
#      run and restart it on the same port and cache directory. The
#      retrying client (internal/client) must ride through the outage —
#      resubmitting jobs the restarted daemon no longer knows — and the
#      run must end with zero lost jobs, zero double-terminals and zero
#      byte divergence.
#
# This is the ops-facing twin of the in-process chaos harness
# (battload -self -self-faults ...): same contract, real binary, real
# signals, a real pulled volume.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
cachedir="$workdir/cache"
pid=""
loadpid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  [ -n "$loadpid" ] && kill "$loadpid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/battschedd" ./cmd/battschedd
go build -o "$workdir/battload" ./cmd/battload

# start_daemon <logfile> [addr]: launches with a fast-cycling breaker,
# waits for the listen line and sets $base / $port.
start_daemon() {
  "$workdir/battschedd" -addr "${2:-127.0.0.1:0}" -cache-dir "$cachedir" \
    -disk-breaker-threshold 3 -disk-breaker-window 10s -disk-breaker-probe 200ms \
    -quiet 2>"$1" &
  pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/^battschedd: listening on //p' "$1")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "daemon died at startup:"; cat "$1"; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "daemon never listened:"; cat "$1"; exit 1; }
  base="http://$addr"
  port="${addr##*:}"
}

# readyz_status: prints the aggregate /readyz verdict (ok|degraded|
# draining). The aggregate is the first "status" in the body; the
# anchored match keeps sed off the per-subsystem ones.
readyz_status() {
  curl -sS "$base/readyz" | sed -n 's/^{"status":"\([a-z]*\)".*/\1/p'
}

# await_readyz <want> <n>: polls until /readyz reports <want>, driving a
# fresh (uncached) request each try so the breaker sees disk traffic —
# it only counts errors, probes and closes on operations, never on a
# timer alone.
await_readyz() {
  for i in $(seq 1 "$2"); do
    curl -sS -o /dev/null "$base/v1/schedule" \
      -d "{\"fixture\":\"g3\",\"deadline\":$((100 + i))}" || true
    [ "$(readyz_status)" = "$1" ] && return 0
    sleep 0.1
  done
  echo "readyz never reached $1 (last: $(readyz_status)):"
  curl -sS "$base/readyz"; echo; curl -sS "$base/metrics"; echo
  exit 1
}

echo "== leg 1: pull the disk, degrade, restore, recover"
start_daemon "$workdir/leg1.log"
[ "$(readyz_status)" = "ok" ] || { echo "fresh daemon not ok"; exit 1; }

# Prime one result into the memory tier (and through to disk).
prime='{"fixture":"g3","deadline":230}'
curl -sS -o /dev/null "$base/v1/schedule" -d "$prime"

# Pull the volume: the directory becomes a plain file, so every disk
# operation under it fails. New misses now hit disk errors on both the
# read and the write-through.
mv "$cachedir" "$cachedir.pulled"
touch "$cachedir"

await_readyz degraded 50
kill -0 "$pid" || { echo "daemon died while degraded"; exit 1; }

# Degraded means degraded, not down: the primed request still answers
# from memory.
hit="$(curl -sS -D - -o /dev/null "$base/v1/schedule" -d "$prime" | grep -ci '^x-cache: hit' || true)"
[ "$hit" = "1" ] || { echo "memory hit not served while degraded"; exit 1; }

# Restore the volume; the next half-open probe (every 200ms) should
# succeed and re-close the breaker.
rm "$cachedir"
mv "$cachedir.pulled" "$cachedir"
await_readyz ok 50

# The breaker must have genuinely tripped, not just flickered.
metrics="$(curl -sS "$base/metrics")"
echo "$metrics" | grep -q '"disk_breaker_open":0' && {
  echo "breaker never tripped:"; echo "$metrics"; exit 1
}
echo "$metrics" | grep -q '"disk_breaker_state":"closed"' || {
  echo "breaker not closed after recovery:"; echo "$metrics"; exit 1
}
kill -TERM "$pid"; wait "$pid" || true; pid=""
echo "leg 1 OK: tripped, served memory-only, recovered"

echo "== leg 2: SIGKILL mid-run, restart, resilient client rides through"
rm -rf "$cachedir" && mkdir "$cachedir"
start_daemon "$workdir/leg2a.log"

# An open-loop resilient run long enough (~4s at 150/s) to be killed in
# the middle: -assert turns any lost job, double terminal or byte
# divergence into the exit status.
"$workdir/battload" -addr "$base" -resilient -n 600 -c 16 -rate 150 \
  -slo-error-rate 0 -assert -o "$workdir/chaos_load.json" \
  >"$workdir/load.out" 2>&1 &
loadpid=$!

sleep 1.5
kill -9 "$pid"; wait "$pid" 2>/dev/null || true; pid=""
start_daemon "$workdir/leg2b.log" "127.0.0.1:$port"
grep -q 'warm start from' "$workdir/leg2b.log" || { echo "no warm start after crash"; exit 1; }

if ! wait "$loadpid"; then
  echo "resilient run failed across the crash:"; cat "$workdir/load.out"
  exit 1
fi
loadpid=""

# The client must have actually exercised resilience, not merely
# survived an uneventful run.
python3 - "$workdir/chaos_load.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))["results"][0]
assert rep["lost"] == 0, rep
assert rep["double_terminal"] == 0, rep
assert rep["byte_mismatch"] == 0, rep
assert rep["done"] == rep["jobs"], rep
retries = (rep.get("client") or {}).get("retries", 0)
resubmits = rep.get("resubmits", 0)
assert retries + resubmits > 0, f"no retries or resubmits recorded: {rep}"
print(f"leg 2 OK: {rep['done']} done, 0 lost, {retries} client retries, {resubmits} resubmits across the kill")
EOF

kill -TERM "$pid"; wait "$pid" || true; pid=""
echo "chaos smoke OK"

#!/usr/bin/env bash
# bench.sh — run the benchmark suite and emit a machine-readable
# BENCH_<date>.json snapshot (benchmark name -> ns/op, B/op, allocs/op),
# the repo's perf-trajectory format (see ARCHITECTURE.md §Performance).
#
# Usage:
#   scripts/bench.sh [-c count] [-t benchtime] [-b pattern] [-p packages] [-o out.json]
#
#   -c count      -count passed to go test (default 3; use 1 for smoke runs)
#   -t benchtime  -benchtime passed to go test (e.g. 0.5s or 1x; default: go's)
#   -b pattern    -bench regexp (default ".")
#   -p packages   package pattern (default "./...")
#   -o out.json   output path (default "BENCH_$(date +%F).json" in the repo root)
#
# Raw `go test` output streams to stderr so progress stays visible; the
# JSON snapshot is written at the end. Compare snapshots over time to see
# the trajectory (BENCH_*.json files are committed evidence, not rebuilt
# by CI — CI only smoke-runs the benchmarks so they cannot rot).
set -euo pipefail
cd "$(dirname "$0")/.."

count=3
benchtime=""
pattern="."
packages="./..."
out="BENCH_$(date +%F).json"
while getopts "c:t:b:p:o:h" opt; do
  case "$opt" in
    c) count="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    b) pattern="$OPTARG" ;;
    p) packages="$OPTARG" ;;
    o) out="$OPTARG" ;;
    h|*) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
  esac
done

args=(test -run '^$' -bench "$pattern" -benchmem -count "$count")
if [ -n "$benchtime" ]; then
  args+=(-benchtime "$benchtime")
fi
args+=($packages)

echo "running: go ${args[*]}" >&2
go "${args[@]}" | tee /dev/stderr | go run ./scripts/benchjson -o "$out"
echo "wrote $out" >&2

#!/usr/bin/env bash
# bench_compare.sh — rerun the scaling-sensitive benchmarks and diff
# them against the newest committed BENCH_*.json snapshot, failing on
# regression. This is the committed snapshots' enforcement arm: CI's
# bench-smoke job runs it, so BenchmarkScalingTasks and
# BenchmarkTable3WindowSweep cannot silently regress past the threshold.
#
# Usage:
#   scripts/bench_compare.sh [-b baseline.json] [-m pattern] [-r max-regress] [-c count] [-t benchtime]
#
#   -b baseline  baseline snapshot (default: newest committed BENCH_<date>.json,
#                ignoring .pre/.load/.chaos variants)
#   -m pattern   benchmark key regexp to compare
#                (default "BenchmarkScalingTasks|BenchmarkTable3WindowSweep")
#   -r fraction  allowed regression before failing (default 0.25 = +25%)
#   -c count     -count for the fresh run (default 3; means are compared,
#                more samples = steadier means)
#   -t benchtime -benchtime for the fresh run (default 0.3s)
#
# The fresh run covers only the matched benchmarks (root package), so a
# full compare stays CI-sized. Shared runners are noisy; the default
# threshold is loose on purpose — it exists to catch algorithmic
# regressions, not scheduler jitter.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=""
pattern='BenchmarkScalingTasks|BenchmarkTable3WindowSweep'
regress=0.25
count=3
benchtime=0.3s
while getopts "b:m:r:c:t:h" opt; do
  case "$opt" in
    b) baseline="$OPTARG" ;;
    m) pattern="$OPTARG" ;;
    r) regress="$OPTARG" ;;
    c) count="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    h|*) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
  esac
done

if [ -z "$baseline" ]; then
  # Newest main snapshot by date in the name; variants carry suffixes.
  baseline=$(ls BENCH_????-??-??.json 2>/dev/null | sort | tail -n 1 || true)
  if [ -z "$baseline" ]; then
    echo "bench_compare: no committed BENCH_<date>.json found" >&2
    exit 2
  fi
fi

fresh=$(mktemp /tmp/bench_compare.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT

echo "fresh run: -bench '$pattern' -count $count -benchtime $benchtime" >&2
go test -run '^$' -bench "$pattern" -benchmem -count "$count" -benchtime "$benchtime" . \
  | go run ./scripts/benchjson -o "$fresh"

go run ./scripts/benchcompare -base "$baseline" -new "$fresh" \
  -match "$pattern" -max-regress "$regress"

// Command benchcompare diffs two BENCH_*.json snapshots (see
// scripts/benchjson) and fails when a benchmark regressed past a
// threshold. It is the teeth behind the committed snapshots: CI's
// bench-smoke job reruns the scaling-sensitive benchmarks and compares
// their mean ns/op against the last committed snapshot, so an
// accidental algorithmic regression cannot merge silently.
//
// Usage:
//
//	go run ./scripts/benchcompare -base BENCH_2026-08-08.json -new /tmp/fresh.json \
//	    -match 'BenchmarkScalingTasks|BenchmarkTable3WindowSweep' -max-regress 0.25
//
// Only benchmarks present in BOTH snapshots and matching -match are
// compared (a new benchmark has no baseline; a retired one has no fresh
// number). Improvements and small drifts print informationally; any
// comparison where new > base*(1+max-regress) fails the run with exit
// status 1. Shared runners are noisy, so the default threshold is
// deliberately loose — it catches algorithmic regressions (2x, 10x),
// not micro-drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

type snapshot struct {
	Generated  string           `json:"generated"`
	CPU        string           `json:"cpu"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

func main() {
	basePath := flag.String("base", "", "baseline snapshot (committed BENCH_*.json)")
	newPath := flag.String("new", "", "fresh snapshot to judge")
	match := flag.String("match", ".", "regexp selecting benchmark keys to compare")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when new ns/op exceeds base by more than this fraction")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -base and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: bad -match: %v\n", err)
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(fresh.Benchmarks))
	for k := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[k]; ok && re.MatchString(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: no benchmark matches %q in both snapshots\n", *match)
		os.Exit(2)
	}

	failed := 0
	fmt.Printf("comparing %d benchmarks against %s (threshold +%.0f%%)\n",
		len(keys), *basePath, *maxRegress*100)
	for _, k := range keys {
		b, n := base.Benchmarks[k], fresh.Benchmarks[k]
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := n.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+*maxRegress {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-70s %12.0f -> %12.0f ns/op  (%+.1f%%)  %s\n",
			k, b.NsPerOp, n.NsPerOp, (ratio-1)*100, verdict)
	}
	if failed > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed more than %.0f%%\n", failed, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("PASS: no benchmark regressed past the threshold")
}

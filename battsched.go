// Package battsched is a from-scratch Go reproduction of "An Iterative
// Algorithm for Battery-Aware Task Scheduling on Portable Computing
// Platforms" (Jawad Khan & Ranga Vemuri, DATE 2005).
//
// The library schedules an application — a precedence task graph whose
// tasks each offer several design points (voltage/frequency settings on a
// DVS processor, or alternative FPGA bitstreams) — onto a battery-powered
// platform so that a deadline is met and the battery charge drawn, as
// estimated by the Rakhmatov–Vrudhula analytical battery model, is as
// small as possible.
//
// # Quick start
//
//	var b battsched.Builder
//	b.AddTask(1, "decode", battsched.DesignPoint{Current: 500, Time: 2.0},
//	    battsched.DesignPoint{Current: 120, Time: 4.5})
//	b.AddTask(2, "render", battsched.DesignPoint{Current: 700, Time: 1.5},
//	    battsched.DesignPoint{Current: 160, Time: 3.5})
//	b.AddEdge(1, 2)
//	g, err := b.Build()
//	// handle err
//	res, err := battsched.Run(g, 7.0, battsched.Options{})
//	// res.Schedule, res.Cost (mA·min), res.Duration …
//
// The paper's two benchmark graphs are available as G2() (robotic arm
// controller case study) and G3() (15-task fork-join illustrative
// example); cmd/paperrepro regenerates every table of the paper's
// evaluation from them.
//
// Beyond single runs, RunBatch fans independent jobs over a worker pool,
// and RunCached/RunBatchCached put a content-addressed result cache in
// front of the engine for repeated-request workloads; cmd/battschedd
// serves the same engine and cache over HTTP (see ARCHITECTURE.md and
// docs/API.md).
//
// This facade re-exports the stable surface of the internal packages;
// units everywhere are milliamperes, minutes and mA·min.
package battsched

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/battery"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/taskgraph"
)

//go:generate go run ./cmd/taskgen -fixture g2 -o testdata/g2.json
//go:generate go run ./cmd/taskgen -fixture g3 -o testdata/g3.json

// Graph is an immutable task graph; build one with Builder.
type Graph = taskgraph.Graph

// Builder accumulates tasks and precedence edges and validates them into a
// Graph.
type Builder = taskgraph.Builder

// Task is one node of the graph.
type Task = taskgraph.Task

// DesignPoint is one implementation option of a task: average platform
// current (mA) and execution time (minutes).
type DesignPoint = taskgraph.DesignPoint

// Spec is the JSON interchange form of a graph (see Graph.ToSpec,
// taskgraph.ReadJSON).
type Spec = taskgraph.Spec

// Schedule is a sequential task order plus one design point per task.
type Schedule = sched.Schedule

// Stats summarizes a schedule under a battery model and deadline.
type Stats = sched.Stats

// Options configures the iterative scheduler; the zero value reproduces
// the paper's configuration.
type Options = core.Options

// Result is the scheduler outcome: the best schedule, its battery cost
// sigma (mA·min), duration, energy and the iteration trace.
type Result = core.Result

// Trace is the per-iteration run history (Options.RecordTrace).
type Trace = core.Trace

// Scheduler runs the paper's algorithm for one graph and deadline; most
// callers only need Run.
type Scheduler = core.Scheduler

// Runner executes one Scheduler repeatedly while reusing all mutable run
// state — after a warm-up run the steady state performs zero heap
// allocations (tracing off). Create one per goroutine with
// Scheduler.NewRunner; the returned Result is owned by the Runner and
// overwritten by its next run.
type Runner = core.Runner

// SweepRunner evaluates one graph + options across many deadlines while
// reusing everything that does not depend on the deadline (battery model
// resolution, matrices, candidate pruning, the initial sequence and the
// scratch arena). A deadline sweep through it costs one construction
// plus O(1) setup per deadline; each result is bit-identical to
// Run(g, deadline, opt)'s. Like Runner it is a single goroutine's arena,
// and its returned Result is overwritten by the next call.
type SweepRunner = core.SweepRunner

// NewSweepRunner validates the graph and options once and returns a
// runner for sweeping deadlines over them.
func NewSweepRunner(g *Graph, opt Options) (*SweepRunner, error) {
	return core.NewSweepRunner(g, opt)
}

// MaxApprox bounds Options.Approx, the documented approximation mode's
// per-decision suitability tolerance (0 = exact mode, the default).
const MaxApprox = core.MaxApprox

// ErrDeadlineInfeasible is returned when even the all-fastest assignment
// misses the deadline.
var ErrDeadlineInfeasible = core.ErrDeadlineInfeasible

// ErrCanceled marks a batch job cut short by its context or timeout —
// whether it never started or was aborted mid-search. Match it with
// errors.Is on BatchResult.Err.
var ErrCanceled = engine.ErrCanceled

// BatteryModel estimates the apparent charge a discharge profile draws.
type BatteryModel = battery.Model

// BatterySpec is the declarative, serializable battery-model selection:
// a kind plus that kind's validated parameters. Unlike a BatteryModel
// value, a spec can travel over the wire (the jobs' "battery" JSON
// object), be parsed from a -battery CLI flag (ParseBatterySpec), and
// be hashed into the result cache key — spec-based jobs are fully
// cacheable. Set it on Options.Battery; the zero Options (or
// DefaultBatterySpec) reproduces the paper's Rakhmatov configuration
// bit-identically.
type BatterySpec = battery.Spec

// The accepted BatterySpec kinds.
const (
	BatteryKindRakhmatov  = battery.KindRakhmatov
	BatteryKindIdeal      = battery.KindIdeal
	BatteryKindPeukert    = battery.KindPeukert
	BatteryKindKiBaM      = battery.KindKiBaM
	BatteryKindCalibrated = battery.KindCalibrated
)

// DefaultBatterySpec returns the paper's battery configuration
// (Rakhmatov, beta 0.273, ten series terms) as a spec.
func DefaultBatterySpec() BatterySpec { return battery.DefaultSpec() }

// ParseBatterySpec parses the -battery CLI flag syntax (for example
// "kibam,capacity=40000,c=0.5,rate=0.1") into a validated BatterySpec.
func ParseBatterySpec(flag string) (BatterySpec, error) { return battery.ParseSpec(flag) }

// BatterySpecKinds returns the accepted spec kinds, in display order.
func BatterySpecKinds() []string { return battery.Kinds() }

// Profile is a piecewise-constant discharge profile.
type Profile = battery.Profile

// Interval is one constant-current segment of a Profile.
type Interval = battery.Interval

// Rakhmatov is the Rakhmatov–Vrudhula analytical battery model (the
// paper's Equation 1).
type Rakhmatov = battery.Rakhmatov

// Ideal is the linear coulomb-counting battery model.
type Ideal = battery.Ideal

// Peukert is the Peukert's-law battery model.
type Peukert = battery.Peukert

// KiBaM is the kinetic (two-well) battery model.
type KiBaM = battery.KiBaM

// SVGOptions controls Profile.WriteSVG chart rendering.
type SVGOptions = battery.SVGOptions

// DefaultBeta is the paper's diffusion parameter (0.273 min^-1/2).
const DefaultBeta = battery.DefaultBeta

// New prepares a Scheduler; see Run for the one-shot form.
func New(g *Graph, deadline float64, opt Options) (*Scheduler, error) {
	return core.New(g, deadline, opt)
}

// Run schedules the graph against the deadline with the paper's iterative
// algorithm and returns the best schedule found.
func Run(g *Graph, deadline float64, opt Options) (*Result, error) {
	s, err := core.New(g, deadline, opt)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunContext is Run with cooperative cancellation: the iterative search
// checks ctx between iterations, windows and sequence positions, so it
// stops promptly — returning ctx.Err() — once the caller gives up. A
// run that completes is bit-identical to Run's.
func RunContext(ctx context.Context, g *Graph, deadline float64, opt Options) (*Result, error) {
	s, err := core.New(g, deadline, opt)
	if err != nil {
		return nil, err
	}
	return s.RunContext(ctx)
}

// RunBaselineRV runs the comparison algorithm of the paper's reference
// [1]: exact minimum-energy design-point selection under the deadline (a
// dynamic program) followed by Equation-5 greedy sequencing.
func RunBaselineRV(g *Graph, deadline float64) (*Schedule, error) {
	return baseline.RakhmatovSchedule(g, deadline)
}

// RunBaselineChowdhury runs the reference-[7]-style heuristic: all tasks
// start fastest, then are scaled down as far as the slack allows starting
// from the last task. A nil order uses the graph's deterministic
// topological order.
func RunBaselineChowdhury(g *Graph, deadline float64, order []int) (*Schedule, error) {
	return baseline.ChowdhurySchedule(g, deadline, order)
}

// NewRakhmatov returns the paper's battery model with the given beta and
// ten series terms.
func NewRakhmatov(beta float64) Rakhmatov { return battery.NewRakhmatov(beta) }

// NewKiBaM returns a kinetic battery model with the given capacity
// (mA·min), available-well fraction c in (0,1] and rate constant k
// (1/min).
func NewKiBaM(capacity, c, k float64) KiBaM { return battery.NewKiBaM(capacity, c, k) }

// NewPeukert returns a Peukert's-law model with exponent k >= 1 and
// reference current in mA.
func NewPeukert(exponent, refCurrent float64) Peukert {
	return battery.NewPeukert(exponent, refCurrent)
}

// Observation is one measured constant-current discharge (current in mA,
// lifetime in minutes), used to calibrate the battery model.
type Observation = battery.Observation

// FitRakhmatov estimates the Rakhmatov model's (capacity, beta) from
// constant-current lifetime measurements — the calibration step that turns
// datasheet numbers into scheduler parameters.
func FitRakhmatov(obs []Observation) (alpha, beta float64, err error) {
	return battery.FitRakhmatov(obs)
}

// IdlePlan is a slack-as-rest assignment produced by RunWithIdle.
type IdlePlan = core.IdlePlan

// MultiStartOptions configures RunMultiStart.
type MultiStartOptions = core.MultiStartOptions

// RunMultiStart runs the algorithm from its deterministic initial sequence
// plus several seeded random topological orders and returns the best
// result found (never worse than Run's).
func RunMultiStart(g *Graph, deadline float64, opt Options, ms MultiStartOptions) (*Result, error) {
	s, err := core.New(g, deadline, opt)
	if err != nil {
		return nil, err
	}
	return core.RunMultiStart(s, ms)
}

// RunMultiStartContext is RunMultiStart with cooperative cancellation:
// ctx is checked between restarts and inside each restart's search, and
// a completed search is bit-identical to RunMultiStart's.
func RunMultiStartContext(ctx context.Context, g *Graph, deadline float64, opt Options, ms MultiStartOptions) (*Result, error) {
	s, err := core.New(g, deadline, opt)
	if err != nil {
		return nil, err
	}
	return core.RunMultiStartContext(ctx, s, ms)
}

// BatchJob is one request of a batch: a graph, a deadline and a strategy
// name (iterative, multistart, withidle, rv-dp, chowdhury, all-fastest,
// lowest-power; empty means iterative).
type BatchJob = engine.Job

// BatchResult is the outcome of one BatchJob, with a per-job Err instead
// of a batch-wide failure.
type BatchResult = engine.Result

// BatchEngine executes batches of scheduling jobs over a bounded worker
// pool; the zero value bounds the pool at GOMAXPROCS.
type BatchEngine = engine.Engine

// BatchStrategies returns the canonical strategy names RunBatch accepts.
func BatchStrategies() []string { return engine.Strategies() }

// RunBatch schedules every job over a pool of `workers` goroutines
// (0 means GOMAXPROCS) and returns one result per job, in input order.
// Failures land in BatchResult.Err; RunBatch itself never fails, and its
// output is byte-deterministic for a fixed batch regardless of workers.
func RunBatch(jobs []BatchJob, workers int) []BatchResult {
	return engine.RunBatch(jobs, workers)
}

// RunBatchContext is RunBatch with request-scoped cancellation: once
// ctx is done, jobs not yet started are marked ErrCanceled without
// running, in-flight iterative searches abort at their next cooperative
// check, and jobs that completed first keep results bit-identical to an
// uncancelled run's. Per-job budgets go in BatchJob.Timeout.
func RunBatchContext(ctx context.Context, jobs []BatchJob, workers int) []BatchResult {
	return engine.RunBatchContext(ctx, jobs, workers)
}

// Cache is a bounded, concurrency-safe LRU of scheduling results keyed
// by a canonical content hash of (graph, deadline, strategy, options,
// multi-start config), with single-flight deduplication: identical
// concurrent requests compute once. Create one with NewCache and share
// it across RunCached/RunBatchCached calls (and goroutines) — that
// sharing is the point.
type Cache = cache.Cache

// CacheStats is a point-in-time snapshot of a Cache's hit/miss/dedup/
// eviction counters.
type CacheStats = cache.Stats

// NewCache returns an empty result cache bounded at maxEntries (0 means
// a 1024-entry default).
func NewCache(maxEntries int) *Cache { return cache.New(maxEntries) }

// RunCached is Run behind a result cache: a repeated (graph, deadline,
// options) triple answers from memory, and identical concurrent calls
// compute once. Results are deep copies, so callers may mutate them
// freely. A nil cache, a deprecated opaque Options.Model (no canonical
// content to hash) or Options.RecordTrace (the trace is not cached)
// all fall back to a plain Run; declarative Options.Battery specs are
// fully cacheable.
func RunCached(c *Cache, g *Graph, deadline float64, opt Options) (*Result, error) {
	if c == nil || opt.Model != nil || opt.RecordTrace {
		return Run(g, deadline, opt)
	}
	ce := cache.Engine{Cache: c, Workers: 1}
	res, _ := ce.Run(engine.Job{Graph: g, Deadline: deadline, Options: opt})
	if res.Err != nil {
		return nil, res.Err
	}
	return &Result{
		Schedule:   res.Schedule,
		Cost:       res.Cost,
		Duration:   res.Duration,
		Energy:     res.Energy,
		Iterations: res.Iterations,
	}, nil
}

// RunBatchCached is RunBatch behind a result cache: repeated jobs —
// within the batch or across batches sharing the cache — are answered
// from memory, and identical jobs in flight at the same time compute
// once. The results are identical to RunBatch's for any workers value
// and any cache state.
func RunBatchCached(c *Cache, jobs []BatchJob, workers int) []BatchResult {
	ce := cache.Engine{Cache: c, Workers: workers}
	results, _ := ce.RunBatch(jobs)
	return results
}

// RunBatchCachedContext is RunBatchCached with request-scoped
// cancellation. A canceled caller detaches from any single-flight
// computation it was waiting on without poisoning it for other waiters,
// and a computation aborted by cancellation is never stored — the cache
// only ever holds results of completed, deterministic runs.
func RunBatchCachedContext(ctx context.Context, c *Cache, jobs []BatchJob, workers int) []BatchResult {
	ce := cache.Engine{Cache: c, Workers: workers}
	results, _ := ce.RunBatchContext(ctx, jobs)
	return results
}

// RunWithIdle runs the iterative algorithm and then spends the remaining
// deadline slack as interior rest periods where the battery model rewards
// them (an extension of the paper exploiting its Section 3 recovery
// effect).
func RunWithIdle(g *Graph, deadline float64, opt Options) (*Result, *IdlePlan, error) {
	return core.RunWithIdle(g, deadline, opt)
}

// Lifetime returns the earliest time sigma(t) reaches capacity alpha, and
// whether the battery dies within the profile.
func Lifetime(m BatteryModel, p Profile, alpha float64) (float64, bool) {
	return battery.Lifetime(m, p, alpha, battery.LifetimeOptions{})
}

// G2 returns the paper's robotic arm controller case-study graph
// (Figure 5): 9 tasks, 4 design points each.
func G2() *Graph { return taskgraph.G2() }

// G2Deadlines are the deadlines the paper evaluates G2 at (55, 75, 95).
func G2Deadlines() []float64 { return append([]float64(nil), taskgraph.G2Deadlines...) }

// G3 returns the paper's illustrative fork-join graph (Table 1): 15
// tasks, 5 design points each.
func G3() *Graph { return taskgraph.G3() }

// G3Deadline is the deadline of the paper's illustrative run (230 min).
const G3Deadline = taskgraph.G3Deadline

// G3Deadlines are the deadlines Table 4 evaluates G3 at (100, 150, 230).
func G3Deadlines() []float64 { return append([]float64(nil), taskgraph.G3Deadlines...) }

// Platform describes a simulated portable platform (processing element,
// peripheral base current, battery model and capacity).
type Platform = sim.Platform

// CPU is a simulated DVS processor with optional level-switch overhead.
type CPU = sim.CPU

// FPGA is a simulated FPGA with per-task bitstream reconfiguration
// overhead.
type FPGA = sim.FPGA

// SimResult is the outcome of simulating a schedule on a Platform.
type SimResult = sim.Result

// Simulate executes a schedule on the platform, tracking the battery and
// detecting mid-run death.
func Simulate(p Platform, g *Graph, s *Schedule) (*SimResult, error) {
	return sim.Run(p, g, s)
}

// MissionCycles runs the schedule back to back on a finite battery and
// returns how many complete runs fit before the battery dies, and when it
// dies.
func MissionCycles(p Platform, g *Graph, s *Schedule, maxRuns int) (int, float64, error) {
	return sim.LifetimeUnderRepetition(p, g, s, maxRuns)
}

// SimulateProfile drives the platform's battery with an arbitrary
// discharge profile (for example an idle-padded one from
// IdlePlan.Apply) and reports completion or mid-run death.
func SimulateProfile(p Platform, profile Profile) (*SimResult, error) {
	return sim.RunProfile(p, profile)
}

package battsched_test

import (
	"fmt"

	battsched "repro"
)

// ExampleRun schedules a two-task pipeline battery-aware.
func ExampleRun() {
	var b battsched.Builder
	b.AddTask(1, "sense",
		battsched.DesignPoint{Current: 500, Time: 2},
		battsched.DesignPoint{Current: 100, Time: 5})
	b.AddTask(2, "transmit",
		battsched.DesignPoint{Current: 400, Time: 1},
		battsched.DesignPoint{Current: 80, Time: 3})
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := battsched.Run(g, 8, battsched.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Schedule)
	fmt.Printf("duration %.0f min\n", res.Duration)
	// Output:
	// T1@DP2 T2@DP2
	// duration 8 min
}

// ExampleNewRakhmatov evaluates the paper's battery model on a simple
// burst-then-rest profile, showing the recovery effect.
func ExampleNewRakhmatov() {
	m := battsched.NewRakhmatov(battsched.DefaultBeta)
	p := battsched.Profile{
		{Current: 400, Duration: 10}, // burst
		{Current: 0, Duration: 30},   // rest
	}
	atBurstEnd := m.ChargeLost(p, 10)
	atRestEnd := m.ChargeLost(p, 40)
	fmt.Printf("delivered: %.0f mA·min\n", p.DeliveredCharge(40))
	fmt.Println("burst end > rest end:", atBurstEnd > atRestEnd)
	// Output:
	// delivered: 4000 mA·min
	// burst end > rest end: true
}

// ExampleRunWithIdle spends leftover deadline slack as recovery rest.
func ExampleRunWithIdle() {
	var b battsched.Builder
	b.AddTask(1, "burst", battsched.DesignPoint{Current: 900, Time: 10})
	b.AddTask(2, "tail", battsched.DesignPoint{Current: 50, Time: 10})
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	// Single design points: the deadline slack (40 min) can only be
	// spent as rest between the burst and the tail.
	_, plan, err := battsched.RunWithIdle(g, 60, battsched.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rest placed: %.0f min\n", plan.TotalIdle())
	fmt.Println("sigma reduced:", plan.Cost < plan.BaseCost)
	// Output:
	// rest placed: 40 min
	// sigma reduced: true
}

// ExampleRunCached runs the same request twice through a result cache:
// the second call is answered from memory (a hit) with the identical
// schedule — the amortization battschedd serves over HTTP.
func ExampleRunCached() {
	c := battsched.NewCache(0) // 0 = default 1024-entry bound
	g := battsched.G3()

	first, err := battsched.RunCached(c, g, 230, battsched.Options{})
	if err != nil {
		panic(err)
	}
	second, err := battsched.RunCached(c, g, 230, battsched.Options{})
	if err != nil {
		panic(err)
	}

	st := c.Stats()
	fmt.Printf("misses %d, hits %d\n", st.Misses, st.Hits)
	fmt.Println("identical cost:", first.Cost == second.Cost)
	// Output:
	// misses 1, hits 1
	// identical cost: true
}

// ExampleRunBatchCached pushes a batch with repeated jobs through a
// shared cache: duplicates compute once, and the results are identical
// to RunBatch's.
func ExampleRunBatchCached() {
	c := battsched.NewCache(0)
	jobs := []battsched.BatchJob{
		{Name: "a", Graph: battsched.G3(), Deadline: 230},
		{Name: "duplicate-of-a", Graph: battsched.G3(), Deadline: 230},
		{Name: "b", Graph: battsched.G2(), Deadline: 75},
	}
	results := battsched.RunBatchCached(c, jobs, 1)
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
	}
	fmt.Println("same cost:", results[0].Cost == results[1].Cost)

	// A second batch over the same cache answers entirely from memory.
	again := battsched.RunBatchCached(c, jobs, 2)
	st := c.Stats()
	fmt.Printf("computed %d unique jobs for %d requests\n", st.Misses, st.Misses+st.Hits+st.Dedups)
	fmt.Println("stable:", again[2].Cost == results[2].Cost)
	// Output:
	// same cost: true
	// computed 2 unique jobs for 6 requests
	// stable: true
}

// ExampleRunBaselineRV compares the paper's algorithm with the
// reference-[1] baseline on the paper's G3 benchmark.
func ExampleRunBaselineRV() {
	g := battsched.G3()
	m := battsched.NewRakhmatov(battsched.DefaultBeta)
	ours, err := battsched.Run(g, 150, battsched.Options{})
	if err != nil {
		panic(err)
	}
	base, err := battsched.RunBaselineRV(g, 150)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ours: %.0f mA·min, baseline: %.0f mA·min\n", ours.Cost, base.Cost(g, m))
	// Output:
	// ours: 41801 mA·min, baseline: 48650 mA·min
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/taskgraph"
)

// TestRunBatchNDJSON drives the full pipe: fixture jobs, an inline
// graph, blank lines, a parse error, an infeasible job — results must
// come back in input order with per-job errors only.
func TestRunBatchNDJSON(t *testing.T) {
	var spec bytes.Buffer
	if err := taskgraph.G2().WriteJSON(&spec, "g2-inline"); err != nil {
		t.Fatal(err)
	}
	inline := strings.ReplaceAll(spec.String(), "\n", "")
	input := strings.Join([]string{
		`{"name":"a","fixture":"g3","deadline":230}`,
		``,
		`{"name":"b","fixture":"g3","deadline":230,"strategy":"multistart","restarts":4,"seed":9}`,
		`{"name":"c","graph":` + inline + `,"deadline":75,"strategy":"rv-dp"}`,
		`this is not json`,
		`{"name":"e","fixture":"g3","deadline":1}`,
		`{"name":"f","fixture":"nope","deadline":10}`,
	}, "\n")

	var out bytes.Buffer
	failed, err := run(strings.NewReader(input), &out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 3 {
		t.Fatalf("failed = %d, want 3", failed)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d result lines, want 6:\n%s", len(lines), out.String())
	}
	var results []resultLine
	for _, l := range lines {
		var r resultLine
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("bad result line %q: %v", l, err)
		}
		results = append(results, r)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("line %d has index %d", i, r.Index)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if results[i].Error != "" || results[i].Cost <= 0 || len(results[i].Order) == 0 {
			t.Fatalf("job %d should succeed: %+v", i, results[i])
		}
	}
	if results[1].Cost > results[0].Cost {
		t.Fatalf("multistart %.4f worse than iterative %.4f", results[1].Cost, results[0].Cost)
	}
	if len(results[2].Order) != taskgraph.G2().N() {
		t.Fatalf("inline graph scheduled %d tasks, want %d", len(results[2].Order), taskgraph.G2().N())
	}
	for _, i := range []int{3, 4, 5} {
		if results[i].Error == "" || len(results[i].Order) != 0 {
			t.Fatalf("job %d should fail: %+v", i, results[i])
		}
	}
}

// TestRunDeterministicAcrossWorkers: byte-identical output for any
// worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	input := `{"fixture":"g2","deadline":55,"strategy":"multistart","restarts":6}
{"fixture":"g2","deadline":75}
{"fixture":"g3","deadline":150,"strategy":"withidle"}
{"fixture":"g3","deadline":230,"strategy":"chowdhury"}
bad line
`
	var ref bytes.Buffer
	if _, err := run(strings.NewReader(input), &ref, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		var out bytes.Buffer
		if _, err := run(strings.NewReader(input), &out, workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), ref.Bytes()) {
			t.Fatalf("workers=%d output differs:\nref: %s\ngot: %s", workers, ref.String(), out.String())
		}
	}
}

// TestJobLineValidation covers the fixture/graph exclusivity rules.
func TestJobLineValidation(t *testing.T) {
	g := taskgraph.G2().ToSpec("x")
	for _, tc := range []struct {
		name string
		line jobLine
		ok   bool
	}{
		{"fixture", jobLine{Fixture: "g2", Deadline: 75}, true},
		{"graph", jobLine{Graph: &g, Deadline: 75}, true},
		{"both", jobLine{Fixture: "g2", Graph: &g, Deadline: 75}, false},
		{"neither", jobLine{Deadline: 75}, false},
		{"bad fixture", jobLine{Fixture: "g9", Deadline: 75}, false},
	} {
		_, err := tc.line.toJob()
		if (err == nil) != tc.ok {
			t.Fatalf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/taskgraph"
	"repro/internal/wire"
)

// TestRunBatchNDJSON drives the full pipe: fixture jobs, an inline
// graph, blank lines, a parse error, an infeasible job — results must
// come back in input order with per-job errors only.
func TestRunBatchNDJSON(t *testing.T) {
	var spec bytes.Buffer
	if err := taskgraph.G2().WriteJSON(&spec, "g2-inline"); err != nil {
		t.Fatal(err)
	}
	inline := strings.ReplaceAll(spec.String(), "\n", "")
	input := strings.Join([]string{
		`{"name":"a","fixture":"g3","deadline":230}`,
		``,
		`{"name":"b","fixture":"g3","deadline":230,"strategy":"multistart","restarts":4,"seed":9}`,
		`{"name":"c","graph":` + inline + `,"deadline":75,"strategy":"rv-dp"}`,
		`this is not json`,
		`{"name":"e","fixture":"g3","deadline":1}`,
		`{"name":"f","fixture":"nope","deadline":10}`,
	}, "\n")

	var out bytes.Buffer
	failed, err := run(context.Background(), strings.NewReader(input), &out, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 3 {
		t.Fatalf("failed = %d, want 3", failed)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d result lines, want 6:\n%s", len(lines), out.String())
	}
	var results []wire.Result
	for _, l := range lines {
		var r wire.Result
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("bad result line %q: %v", l, err)
		}
		results = append(results, r)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("line %d has index %d", i, r.Index)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if results[i].Error != "" || results[i].Cost <= 0 || len(results[i].Order) == 0 {
			t.Fatalf("job %d should succeed: %+v", i, results[i])
		}
	}
	if results[1].Cost > results[0].Cost {
		t.Fatalf("multistart %.4f worse than iterative %.4f", results[1].Cost, results[0].Cost)
	}
	if len(results[2].Order) != taskgraph.G2().N() {
		t.Fatalf("inline graph scheduled %d tasks, want %d", len(results[2].Order), taskgraph.G2().N())
	}
	for _, i := range []int{3, 4, 5} {
		if results[i].Error == "" || len(results[i].Order) != 0 {
			t.Fatalf("job %d should fail: %+v", i, results[i])
		}
	}
}

// TestRunDeterministicAcrossWorkers: byte-identical output for any
// worker count, with and without the result cache.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	input := `{"fixture":"g2","deadline":55,"strategy":"multistart","restarts":6}
{"fixture":"g2","deadline":75}
{"fixture":"g3","deadline":150,"strategy":"withidle"}
{"fixture":"g2","deadline":75}
{"fixture":"g3","deadline":230,"strategy":"chowdhury"}
bad line
`
	var ref bytes.Buffer
	if _, err := run(context.Background(), strings.NewReader(input), &ref, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ workers, cache int }{
		{2, 0}, {7, 0}, {1, 64}, {4, 64},
	} {
		var out bytes.Buffer
		if _, err := run(context.Background(), strings.NewReader(input), &out, tc.workers, tc.cache, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), ref.Bytes()) {
			t.Fatalf("workers=%d cache=%d output differs:\nref: %s\ngot: %s",
				tc.workers, tc.cache, ref.String(), out.String())
		}
	}
}

// TestRejectsBadNumbersAtDecodeTime is the decode gate: NaN/Inf
// deadlines, negative currents and malformed JSON each produce a
// per-line error naming the problem, and never reach the engine.
func TestRejectsBadNumbersAtDecodeTime(t *testing.T) {
	for _, tc := range []struct {
		name string
		line string
		want string // substring of the "error" field
	}{
		{"malformed json", `{{{{`, "invalid character"},
		{"NaN deadline", `{"fixture":"g3","deadline":NaN}`, "invalid character"},
		{"Infinity deadline", `{"fixture":"g3","deadline":Infinity}`, "invalid character"},
		{"zero deadline", `{"fixture":"g3","deadline":0}`, "must be positive"},
		{"negative deadline", `{"fixture":"g3","deadline":-3}`, "must be positive"},
		{"negative current", `{"graph":{"tasks":[{"id":1,"points":[{"current":-5,"time":1}]}]},"deadline":5}`, "current must be"},
		{"non-positive time", `{"graph":{"tasks":[{"id":1,"points":[{"current":5,"time":0}]}]},"deadline":5}`, "time must be"},
		{"trailing data", `{"fixture":"g3","deadline":230} trailing`, "trailing data"},
		{"negative beta", `{"fixture":"g3","deadline":230,"beta":-1}`, "\"beta\" must be"},
		{"unknown field", `{"fixture":"g3","deadline":230,"dedline":5}`, "unknown field"},
	} {
		var out bytes.Buffer
		failed, err := run(context.Background(), strings.NewReader(tc.line), &out, 1, 0, nil)
		if err != nil {
			t.Fatalf("%s: run error %v", tc.name, err)
		}
		if failed != 1 {
			t.Fatalf("%s: failed = %d, want 1", tc.name, failed)
		}
		var res wire.Result
		if err := json.Unmarshal(out.Bytes(), &res); err != nil {
			t.Fatalf("%s: bad result line %q: %v", tc.name, out.String(), err)
		}
		if !strings.Contains(res.Error, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, res.Error, tc.want)
		}
		if res.Order != nil || res.Cost != 0 {
			t.Fatalf("%s: job must not have run: %+v", tc.name, res)
		}
	}
}

// TestJobValidationRules covers the fixture/graph exclusivity rules on
// the shared wire schema.
func TestJobValidationRules(t *testing.T) {
	g := taskgraph.G2().ToSpec("x")
	for _, tc := range []struct {
		name string
		job  wire.Job
		ok   bool
	}{
		{"fixture", wire.Job{Fixture: "g2", Deadline: 75}, true},
		{"graph", wire.Job{Graph: &g, Deadline: 75}, true},
		{"both", wire.Job{Fixture: "g2", Graph: &g, Deadline: 75}, false},
		{"neither", wire.Job{Deadline: 75}, false},
		{"bad fixture", wire.Job{Fixture: "g9", Deadline: 75}, false},
	} {
		_, err := tc.job.ToEngine()
		if (err == nil) != tc.ok {
			t.Fatalf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestRunDefaultBattery: the -battery flag's spec applies to lines that
// select no battery and leaves explicit ones alone.
func TestRunDefaultBattery(t *testing.T) {
	input := strings.Join([]string{
		`{"name":"inherits","fixture":"g3","deadline":230}`,
		`{"name":"explicit","fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`,
		`{"name":"beta","fixture":"g3","deadline":230,"beta":0.5}`,
	}, "\n")
	spec, err := battery.ParseSpec("kibam,capacity=40000,c=0.5,rate=0.1")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run(context.Background(), strings.NewReader(input), &out, 2, 0, &spec); err != nil {
		t.Fatal(err)
	}
	results := decodeResults(t, out.Bytes())
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Error != "" || results[1].Error != "" || results[2].Error != "" {
		t.Fatalf("unexpected failures: %+v", results)
	}
	if results[0].Cost != results[1].Cost {
		t.Fatalf("default-battery line cost %g != explicit kibam cost %g", results[0].Cost, results[1].Cost)
	}
	if results[2].Cost == results[0].Cost {
		t.Fatal("beta line must keep its own Rakhmatov model, not inherit the default spec")
	}
}

// decodeResults parses an NDJSON result stream.
func decodeResults(t *testing.T, data []byte) []wire.Result {
	t.Helper()
	var results []wire.Result
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var r wire.Result
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	return results
}

// Command battbatch schedules a stream of jobs — one JSON object per
// line (NDJSON) — over a bounded worker pool and writes one JSON result
// line per job, in input order. It is the bulk front end to the batch
// engine: heavy traffic goes through here, one process, all cores.
//
// Usage:
//
//	battbatch [-in jobs.ndjson] [-out results.ndjson] [-workers 8]
//	echo '{"fixture":"g3","deadline":230,"strategy":"multistart"}' | battbatch
//
// A job line looks like:
//
//	{"name":"j1","fixture":"g2","deadline":75,"strategy":"iterative"}
//	{"name":"j2","graph":{"tasks":[...]},"deadline":40,"strategy":"rv-dp","beta":0.273}
//	{"name":"j3","fixture":"g3","deadline":230,"strategy":"multistart","restarts":16,"seed":7}
//
// `fixture` (g2 | g3) and `graph` (the taskgen/battsched JSON schema,
// inline) are mutually exclusive. Strategies: iterative (default),
// multistart, withidle, rv-dp, chowdhury, all-fastest, lowest-power.
//
// A result line echoes index/name/strategy and carries either the
// schedule (order, assignment, cost, duration, energy) or an "error"
// string; a malformed or infeasible job never aborts the batch. Output
// is byte-deterministic for a fixed input, whatever -workers is.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// jobLine is the JSON schema of one input line.
type jobLine struct {
	Name     string          `json:"name,omitempty"`
	Fixture  string          `json:"fixture,omitempty"`
	Graph    *taskgraph.Spec `json:"graph,omitempty"`
	Deadline float64         `json:"deadline"`
	Strategy string          `json:"strategy,omitempty"`
	// Beta overrides the Rakhmatov diffusion parameter (0 = paper's).
	Beta float64 `json:"beta,omitempty"`
	// Restarts/Seed/RestartWorkers configure the multistart strategy;
	// RestartWorkers 0 inherits the engine's -workers bound.
	Restarts       int   `json:"restarts,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	RestartWorkers int   `json:"restart_workers,omitempty"`
}

// resultLine is the JSON schema of one output line.
type resultLine struct {
	Index      int         `json:"index"`
	Name       string      `json:"name,omitempty"`
	Strategy   string      `json:"strategy,omitempty"`
	Cost       float64     `json:"cost,omitempty"`
	Duration   float64     `json:"duration,omitempty"`
	Energy     float64     `json:"energy,omitempty"`
	Iterations int         `json:"iterations,omitempty"`
	Order      []int       `json:"order,omitempty"`
	Assignment map[int]int `json:"assignment,omitempty"`
	IdleTotal  float64     `json:"idle_total,omitempty"`
	IdleCost   float64     `json:"idle_cost,omitempty"`
	Error      string      `json:"error,omitempty"`
}

// toJob converts a parsed line into an engine job.
func (l jobLine) toJob() (engine.Job, error) {
	job := engine.Job{
		Name:     l.Name,
		Deadline: l.Deadline,
		Strategy: l.Strategy,
		Options:  core.Options{Beta: l.Beta},
		MultiStart: core.MultiStartOptions{
			Restarts: l.Restarts,
			Seed:     l.Seed,
			Workers:  l.RestartWorkers,
		},
	}
	switch {
	case l.Fixture != "" && l.Graph != nil:
		return job, fmt.Errorf("job has both \"fixture\" and \"graph\"")
	case l.Fixture != "":
		g, _, err := taskgraph.Fixture(l.Fixture)
		if err != nil {
			return job, err
		}
		job.Graph = g
	case l.Graph != nil:
		g, err := taskgraph.FromSpec(*l.Graph)
		if err != nil {
			return job, err
		}
		job.Graph = g
	default:
		return job, fmt.Errorf("job needs a \"fixture\" or an inline \"graph\"")
	}
	return job, nil
}

// run reads NDJSON jobs from r, schedules them over `workers` goroutines
// and writes NDJSON results to w. It returns the number of failed jobs.
func run(r io.Reader, w io.Writer, workers int) (failed int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // inline graphs can be large

	// Every non-blank input line claims one output slot. A line that
	// does not parse keeps its slot with a zero-value placeholder job
	// (which the engine rejects instantly on its nil graph); the parse
	// error, not the engine's, is what its result line reports.
	var jobs []engine.Job
	var parseErrs []error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var jl jobLine
		var job engine.Job
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		perr := dec.Decode(&jl)
		if perr == nil {
			job, perr = jl.toJob()
		}
		jobs = append(jobs, job)
		parseErrs = append(parseErrs, perr)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("reading jobs: %w", err)
	}

	results := engine.RunBatch(jobs, workers)
	enc := json.NewEncoder(w)
	for i, res := range results {
		out := resultLine{Index: i, Name: res.Name, Strategy: res.Strategy}
		switch {
		case parseErrs[i] != nil:
			out.Strategy = "" // never ran; don't echo the placeholder default
			out.Error = parseErrs[i].Error()
		case res.Err != nil:
			out.Error = res.Err.Error()
		default:
			out.Cost = res.Cost
			out.Duration = res.Duration
			out.Energy = res.Energy
			out.Iterations = res.Iterations
			out.Order = res.Schedule.Order
			out.Assignment = res.Schedule.Assignment
			if res.Idle != nil {
				out.IdleTotal = res.Idle.TotalIdle()
				out.IdleCost = res.Idle.Cost
			}
		}
		if out.Error != "" {
			failed++
		}
		if err := enc.Encode(out); err != nil {
			return failed, fmt.Errorf("writing result %d: %w", i, err)
		}
	}
	return failed, nil
}

func main() {
	var (
		in      = flag.String("in", "", "jobs NDJSON file (default stdin)")
		out     = flag.String("out", "", "results NDJSON file (default stdout)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	failed, err := run(r, bw, *workers)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "battbatch: %d job(s) failed (see \"error\" fields)\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "battbatch:", err)
	os.Exit(1)
}

// Command battbatch schedules a stream of jobs — one JSON object per
// line (NDJSON) — over a bounded worker pool and writes one JSON result
// line per job, in input order. It is the bulk front end to the batch
// engine: heavy traffic goes through here, one process, all cores. The
// battschedd daemon serves the same wire schema over HTTP (see
// docs/API.md).
//
// Usage:
//
//	battbatch [-in jobs.ndjson] [-out results.ndjson] [-workers 8] [-cache 0] [-timeout 0]
//	echo '{"fixture":"g3","deadline":230,"strategy":"multistart"}' | battbatch
//
// A job line looks like:
//
//	{"name":"j1","fixture":"g2","deadline":75,"strategy":"iterative"}
//	{"name":"j2","graph":{"tasks":[...]},"deadline":40,"strategy":"rv-dp","beta":0.273}
//	{"name":"j3","fixture":"g3","deadline":230,"strategy":"multistart","restarts":16,"seed":7}
//
// `fixture` (g2 | g3) and `graph` (the taskgen/battsched JSON schema,
// inline) are mutually exclusive. Strategies: iterative (default),
// multistart, withidle, rv-dp, chowdhury, all-fastest, lowest-power.
// A `battery` object selects the cost model declaratively per job
// (kinds: rakhmatov, ideal, peukert, kibam, calibrated — docs/API.md
// has the parameter reference); `-battery kind=...,param=...` sets a
// default spec for the lines that carry neither `battery` nor `beta`.
// Jobs are validated at decode time: NaN/Inf or non-positive deadlines,
// negative currents, invalid battery parameters and unknown fields are
// rejected with an error naming the field, before any scheduling work
// starts.
//
// A result line echoes index/name/strategy and carries either the
// schedule (order, assignment, cost, duration, energy) or an "error"
// string; a malformed or infeasible job never aborts the batch. Output
// is byte-deterministic for a fixed input, whatever -workers is.
// `-cache n` deduplicates repeated jobs within the batch through an
// n-entry result cache (0 disables it; the output bytes are identical
// either way, only wall-clock time changes).
//
// The batch is cancelable: SIGINT (Ctrl-C) stops the scheduling work
// mid-batch instead of letting it run to the end — every line still gets
// a result, with unfinished jobs carrying the "canceled" error code and
// finished ones their normal (bit-identical) payloads. `-timeout`
// bounds the whole batch the same way; a per-job "timeout_ms" field
// bounds a single line.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"

	"repro/internal/battery"
	"repro/internal/cache"
	"repro/internal/wire"
)

// run reads NDJSON jobs from r, schedules them over `workers` goroutines
// (through a cacheEntries-bounded result cache when cacheEntries > 0)
// and writes NDJSON results to w, stopping early — but still writing
// every result line — when ctx is canceled. defaultBattery, when
// non-nil, applies to jobs that select no battery of their own (no
// "battery" object, no "beta"). It returns the number of failed jobs
// (canceled ones included).
func run(ctx context.Context, r io.Reader, w io.Writer, workers, cacheEntries int, defaultBattery *battery.Spec) (failed int, err error) {
	// One output slot per non-blank input line; a line that fails to
	// decode keeps its slot and reports its own error (see
	// wire.DecodeJobs).
	jobs, names, parseErrs, err := wire.DecodeJobs(r)
	if err != nil {
		return 0, err
	}
	if defaultBattery != nil {
		for i := range jobs {
			if parseErrs[i] == nil && jobs[i].Options.Battery == nil && jobs[i].Options.Beta == 0 {
				jobs[i].Options.Battery = defaultBattery
			}
		}
	}

	ce := cache.Engine{Workers: workers}
	if cacheEntries > 0 {
		ce.Cache = cache.New(cacheEntries)
	}
	results, _ := ce.RunBatchContext(ctx, jobs)
	enc := json.NewEncoder(w)
	for i, out := range wire.Results(results, names, parseErrs) {
		if out.Error != "" {
			failed++
		}
		if err := enc.Encode(out); err != nil {
			return failed, fmt.Errorf("writing result %d: %w", i, err)
		}
	}
	return failed, nil
}

func main() {
	var (
		in           = flag.String("in", "", "jobs NDJSON file (default stdin)")
		out          = flag.String("out", "", "results NDJSON file (default stdout)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent jobs (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache", 0, "dedupe repeated jobs through an n-entry result cache (0 = off)")
		timeout      = flag.Duration("timeout", 0, "whole-batch time budget, e.g. 30s (0 = unbounded)")
		batt         = flag.String("battery", "", "default battery spec for jobs without one, e.g. kibam,capacity=40000,c=0.5,rate=0.1")
	)
	flag.Parse()
	var defaultBattery *battery.Spec
	if *batt != "" {
		spec, err := battery.ParseSpec(*batt)
		if err != nil {
			fatal(err)
		}
		defaultBattery = &spec
	}

	// SIGINT cancels the running batch (results written so far are kept,
	// the rest report the canceled code); a second SIGINT kills the
	// process via the restored default handler — AfterFunc unregisters
	// the diversion the moment the first signal lands, NotifyContext
	// alone would swallow every subsequent one until main returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	failed, err := run(ctx, r, bw, *workers, *cacheEntries, defaultBattery)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "battbatch: %d job(s) failed (see \"error\" fields)\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "battbatch:", err)
	os.Exit(1)
}

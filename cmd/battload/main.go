// Command battload load-tests a battschedd's async job API and proves
// (or disproves) its serving SLOs: a fleet of virtual clients submits
// scheduling jobs, consumes results by polling or streaming, and the
// run reports latency histograms (p50/p95/p99 for submit, poll and
// end-to-end), throughput, and the contract verification that makes
// "handles N concurrent clients" a tested claim — zero lost jobs, zero
// double completions, with admission-control rejections accounted
// separately from failures.
//
// Usage:
//
//	battload [-addr http://127.0.0.1:8347 | -self] [-mode poll|stream]
//	         [-n 1000] [-c 64 | -sweep 8,64,512] [-rate 0]
//	         [-fixture g3] [-deadline-min 100] [-deadline-max 230]
//	         [-priorities 0:7,5:2,9:1] [-dup-every 0] [-ttl 0] [-timeout 0]
//	         [-resilient] [-verify-bytes]
//	         [-self-faults schedule] [-self-store dir] [-min-faults 0]
//	         [-self-breaker-threshold 0] [-self-breaker-window 0] [-self-breaker-probe 0]
//	         [-slo-e2e-p99 0] [-slo-submit-p99 0] [-slo-poll-p99 0]
//	         [-slo-error-rate -1] [-assert] [-o report.json] [-bench]
//
// Examples:
//
//	# Saturation curve against a running daemon, snapshot via benchjson:
//	battload -addr http://127.0.0.1:8347 -sweep 64,256,1024 -n 4000 -bench \
//	    | go run ./scripts/benchjson -o BENCH_$(date +%F).load.json
//
//	# Self-contained SLO smoke (starts an in-process battschedd):
//	battload -self -n 300 -c 64 -slo-e2e-p99 10s -slo-error-rate 0 -assert
//
//	# Chaos run: deterministic disk faults under the store, the breaker
//	# cycling, the resilient client in front, zero loss asserted:
//	battload -self -resilient -n 800 -c 32 \
//	    -self-faults "write:every=1:eio,read:every=2:eio" \
//	    -self-breaker-threshold 40 -self-breaker-probe 20ms \
//	    -min-faults 100 -assert
//
// -resilient drives the run through internal/client (capped backoff
// with deterministic jitter, Retry-After floors, resubmit on 404 after
// a restart) instead of the raw poll loop; the report then carries the
// client's own attempt/retry ledger. -self-faults installs a
// deterministic fault schedule (see internal/fault) under -self's disk
// store and the run logs the chaos ledger — faults injected per op,
// disk errors, breaker state and trips; with -assert, -min-faults
// turns "the chaos leg actually ran" into a checked claim.
//
// The human-readable summary goes to stderr; stdout carries only the
// -bench lines (go test -bench format, pipeable into scripts/benchjson)
// so the two never interleave. Exit status: 0 clean, 1 when -assert is
// set and the SLO was violated or the serving contract broke (lost or
// double-completed jobs — contract breaks fail even without SLO flags),
// 2 for unusable flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr = flag.String("addr", "http://127.0.0.1:8347", "base URL of the battschedd under test")
		self = flag.Bool("self", false, "start an in-process battschedd and test that (ignores -addr)")

		mode  = flag.String("mode", "poll", "result consumption: poll | stream")
		n     = flag.Int("n", 1000, "total submissions per stage")
		c     = flag.Int("c", 64, "concurrent virtual clients")
		sweep = flag.String("sweep", "", "comma list of concurrency levels for a saturation curve (overrides -c)")
		rate  = flag.Float64("rate", 0, "open-loop target arrival rate per second (0 = closed loop)")

		fixture  = flag.String("fixture", "g3", "built-in graph every job schedules")
		dmin     = flag.Float64("deadline-min", 100, "deadline spread lower bound (minutes)")
		dmax     = flag.Float64("deadline-max", 230, "deadline spread upper bound (minutes)")
		priomix  = flag.String("priorities", "", "weighted priority mix, e.g. 0:7,5:2,9:1 (default all 0)")
		dupEvery = flag.Int("dup-every", 0, "every k-th submission duplicates its predecessor (exercises coalescing; 0 = never)")
		ttl      = flag.Duration("ttl", 0, "per-job ttl_ms (0 = server default)")
		timeout  = flag.Duration("timeout", 0, "per-job timeout_ms (0 = unbounded)")

		pollInterval = flag.Duration("poll-interval", 2*time.Millisecond, "first poll delay (backs off 1.5x to 25x this)")
		noRetry      = flag.Bool("no-retry", false, "treat 429/503 as final instead of backing off and resubmitting")
		verify       = flag.Bool("verify", true, "confirm each terminal state with one extra poll (double-completion check)")
		runTimeout   = flag.Duration("run-timeout", 0, "bound the whole run (0 = until done or signal)")

		sloSubmit  = flag.Duration("slo-submit-p99", 0, "SLO: accepted-submission p99 (0 = unchecked)")
		sloPoll    = flag.Duration("slo-poll-p99", 0, "SLO: status-poll p99 (0 = unchecked)")
		sloE2E     = flag.Duration("slo-e2e-p99", 0, "SLO: submit-to-done p99 (0 = unchecked)")
		sloErrRate = flag.Float64("slo-error-rate", -1, "SLO: max error fraction of attempts (negative = unchecked)")
		assert     = flag.Bool("assert", false, "exit 1 on SLO violation or contract break")

		out   = flag.String("o", "", "write the full JSON report here")
		bench = flag.Bool("bench", false, "print go-bench-format lines to stdout (pipe into scripts/benchjson)")

		selfQueue   = flag.Int("self-queue", 0, "with -self: queue capacity (0 = default)")
		selfWorkers = flag.Int("self-queue-workers", 0, "with -self: queue worker count (0 = default)")

		resilient   = flag.Bool("resilient", false, "drive the run through internal/client's retrying client (absorbs restarts and backpressure)")
		verifyBytes = flag.Bool("verify-bytes", true, "record result bytes per job ID and count divergent re-observations")

		selfFaults   = flag.String("self-faults", "", "with -self: deterministic disk-fault schedule for the store, e.g. write:every=5:eio (see internal/fault)")
		selfStore    = flag.String("self-store", "", "with -self: disk store directory (default: a temp dir; required for -self-faults to matter)")
		selfBreakThr = flag.Int("self-breaker-threshold", 0, "with -self: disk breaker error threshold (0 = default)")
		selfBreakWin = flag.Duration("self-breaker-window", 0, "with -self: disk breaker error window (0 = default)")
		selfBreakPrb = flag.Duration("self-breaker-probe", 0, "with -self: disk breaker half-open probe interval (0 = default)")
		minFaults    = flag.Int("min-faults", 0, "with -assert: fail unless at least this many faults were injected (proves the chaos leg ran)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run (submission through completion) here; with -self it profiles server + scheduler together, the input scripts/pgo.sh feeds to profile-guided builds")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", 0)

	mix, err := loadgen.ParsePriorityMix(*priomix)
	if err != nil {
		logger.Println("battload:", err)
		os.Exit(2)
	}
	levels, err := parseSweep(*sweep, *c)
	if err != nil {
		logger.Println("battload:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}

	base := *addr
	var srv *server.Server
	var injector *fault.Injector
	if *selfFaults != "" && !*self {
		logger.Println("battload: -self-faults requires -self")
		os.Exit(2)
	}
	if *self {
		scfg := server.Config{
			MaxQueued:    *selfQueue,
			QueueWorkers: *selfWorkers,
			DiskBreaker: cache.BreakerConfig{
				Threshold: *selfBreakThr,
				Window:    *selfBreakWin,
				Probe:     *selfBreakPrb,
			},
		}
		if *selfFaults != "" || *selfStore != "" {
			rules, err := fault.ParseRules(*selfFaults)
			if err != nil {
				logger.Println("battload:", err)
				os.Exit(2)
			}
			dir := *selfStore
			if dir == "" {
				var err error
				if dir, err = os.MkdirTemp("", "battload-chaos-*"); err != nil {
					logger.Fatalln("battload:", err)
				}
				defer os.RemoveAll(dir)
			}
			injector = fault.NewInjector(fault.OS, rules...)
			st, rep, err := store.OpenFS(dir, 0, injector)
			if err != nil {
				logger.Fatalln("battload:", err)
			}
			scfg.CacheStore = st
			logger.Printf("battload: disk store at %s (%d entries warm, %d tmp swept), fault schedule %q",
				dir, rep.Entries, rep.TmpSwept, *selfFaults)
		}
		srv = server.New(scfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Fatalln("battload:", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(l)
		defer func() {
			srv.Close()
			hs.Close()
		}()
		base = "http://" + l.Addr().String()
		logger.Printf("battload: in-process battschedd on %s", base)
	}

	spec := loadgen.JobSpec{
		Fixture:     *fixture,
		DeadlineMin: *dmin,
		DeadlineMax: *dmax,
		DupEvery:    *dupEvery,
		Priorities:  mix,
		TTLMS:       ttl.Milliseconds(),
		TimeoutMS:   timeout.Milliseconds(),
	}
	cfg := loadgen.Config{
		BaseURL:        base,
		Mode:           loadgen.Mode(*mode),
		Jobs:           *n,
		Rate:           *rate,
		PollInterval:   *pollInterval,
		NoRetry429:     *noRetry,
		VerifyTerminal: *verify,
		VerifyBytes:    *verifyBytes,
		Resilient:      *resilient,
		NewJob:         spec.Job,
		SLO: &loadgen.SLO{
			SubmitP99:    *sloSubmit,
			PollP99:      *sloPoll,
			E2EP99:       *sloE2E,
			MaxErrorRate: *sloErrRate,
		},
	}

	// The profile brackets exactly the load phase — no flag parsing or
	// server bring-up noise — and is stopped explicitly (not deferred)
	// because the assert path exits through os.Exit.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			logger.Fatalln("battload:", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Fatalln("battload:", err)
		}
		defer f.Close()
	}
	results, err := loadgen.Sweep(ctx, cfg, levels)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		logger.Printf("battload: wrote CPU profile to %s", *cpuprofile)
	}
	if err != nil {
		logger.Fatalln("battload:", err)
	}

	failed := false
	for _, r := range results {
		logger.Println(summarize(r))
		if verr := r.Verify(); verr != nil {
			logger.Println("battload: CONTRACT VIOLATION:", verr)
			failed = true
		}
		for _, v := range r.Violations {
			logger.Println("battload: SLO VIOLATION:", v)
			failed = true
		}
	}

	// The chaos ledger: how many faults actually fired, and what the
	// breaker did about them. A chaos run whose schedule never fired
	// proves nothing, so -min-faults (with -assert) turns "the faults
	// ran" into a checked claim.
	var chaos map[string]any
	if injector != nil {
		chaos = map[string]any{
			"schedule":     *selfFaults,
			"injected":     injector.Injected(),
			"injected_ops": injector.InjectedByOp(),
		}
		m := srv.Metrics()
		if m.Cache != nil {
			chaos["disk_errors"] = m.Cache.DiskErrors
			chaos["disk_breaker_state"] = m.Cache.DiskBreakerState
			chaos["disk_breaker_open"] = m.Cache.DiskBreakerOpen
			chaos["disk_skipped"] = m.Cache.DiskSkipped
		}
		logger.Printf("battload: chaos: %d fault(s) injected (%v); disk breaker %v (tripped %v, skipped %v disk ops)",
			injector.Injected(), chaos["injected_ops"], chaos["disk_breaker_state"], chaos["disk_breaker_open"], chaos["disk_skipped"])
		if *minFaults > 0 && injector.Injected() < uint64(*minFaults) {
			logger.Printf("battload: CHAOS UNDERRUN: %d fault(s) injected, want >= %d", injector.Injected(), *minFaults)
			failed = true
		}
	} else if *minFaults > 0 {
		logger.Println("battload: -min-faults set but no fault schedule is active")
		failed = true
	}

	if *out != "" {
		doc := map[string]any{"results": results}
		if chaos != nil {
			doc["chaos"] = chaos
		}
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			logger.Fatalln("battload:", err)
		}
		logger.Printf("battload: wrote %s", *out)
	}
	if *bench {
		if err := loadgen.WriteBench(os.Stdout, results...); err != nil {
			logger.Fatalln("battload:", err)
		}
	}
	if failed && *assert {
		os.Exit(1)
	}
}

// parseSweep resolves the concurrency levels: the sweep list, or the
// single -c level.
func parseSweep(s string, c int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		if c <= 0 {
			return nil, fmt.Errorf("-c must be positive, got %d", c)
		}
		return []int{c}, nil
	}
	var levels []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-sweep entry %q must be a positive integer", part)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

// summarize renders one result as the stderr progress line.
func summarize(r *loadgen.Result) string {
	return fmt.Sprintf(
		"battload: mode=%s c=%d jobs=%d: done=%d (err-results %d) expired=%d aborted=%d lost=%d dup=%d rejected429=%d errors=%d | e2e p50/p95/p99 = %.1f/%.1f/%.1fms | poll p99 %.1fms (%d polls) | %.0f jobs/s in %.1fs",
		r.Mode, r.Concurrency, r.Jobs, r.Done, r.DoneWithError, r.Expired, r.Aborted,
		r.Lost, r.DoubleTerminal, r.Rejected, r.Errors,
		r.E2E.P50MS, r.E2E.P95MS, r.E2E.P99MS, r.Poll.P99MS, r.Polls,
		r.ThroughputJPS, r.DurationMS/1000)
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServeAndGracefulShutdown boots the daemon's serve loop on an
// ephemeral port, schedules over it, then cancels the context and
// expects a clean drain: the in-flight request completes and serve
// returns nil.
func TestServeAndGracefulShutdown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	logger := log.New(io.Discard, "", 0)
	s := server.New(server.Config{})

	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, s, logger) }()

	base := "http://" + l.Addr().String()
	resp, err := http.Post(base+"/v1/schedule", "application/json",
		strings.NewReader(`{"fixture":"g2","deadline":75}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule over the daemon: status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Cost  float64 `json:"cost"`
		Order []int   `json:"order"`
	}
	if err := json.Unmarshal(body, &res); err != nil || res.Cost <= 0 || len(res.Order) != 9 {
		t.Fatalf("implausible schedule response: %s (%v)", body, err)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after cancellation")
	}

	// The listener is really closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

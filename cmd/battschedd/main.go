// Command battschedd is the scheduling daemon: a long-running HTTP
// server over the battery-aware scheduling engine with a
// content-addressed result cache, so a stream of repeated (graph,
// deadline, strategy) requests answers from memory instead of re-running
// the iterative search.
//
// Usage:
//
//	battschedd [-addr :8347] [-workers 0] [-max-inflight 0] [-cache 1024] [-timeout 0] [-battery spec] [-quiet]
//	           [-cache-dir ""] [-cache-disk-max-bytes 1073741824]
//	           [-disk-breaker-threshold 0] [-disk-breaker-window 0] [-disk-breaker-probe 0]
//	           [-queue 0] [-queue-workers 0] [-job-ttl 0] [-job-retention 0]
//
//	curl -s localhost:8347/v1/schedule -d '{"fixture":"g3","deadline":230}'
//	curl -s localhost:8347/v1/batch --data-binary @jobs.ndjson
//	curl -s localhost:8347/v1/jobs -d '{"fixture":"g3","deadline":230,"priority":5}'
//	curl -s localhost:8347/v1/jobs/<id>
//	curl -sN localhost:8347/v1/jobs/<id>/stream
//	curl -s localhost:8347/v1/fixtures
//	curl -s localhost:8347/metrics
//
// The async endpoints (POST /v1/jobs and friends) queue work behind an
// admission-controlled priority queue instead of holding the connection
// open: `-queue` bounds the backlog (excess submissions get 429 +
// Retry-After), `-queue-workers` bounds concurrently executing jobs,
// `-job-ttl` default-bounds a job's whole lifetime and `-job-retention`
// keeps finished jobs pollable. On shutdown the queue drains cleanly:
// queued jobs abort without running, running ones cancel, and pollers
// observe the "aborted" terminal state.
//
// `-cache-dir` makes the result cache survive restarts: computed
// results are written through to a crash-safe, content-addressed store
// of one file per cache key under that directory (bounded by
// `-cache-disk-max-bytes`, oldest evicted first), and a daemon
// restarted on the same directory warm starts from it — the same
// requests answer byte-identical from disk with zero recomputation.
// Startup logs the warm-start scan (entries, bytes, corrupt files
// skipped, orphaned temp files swept); torn or corrupt entries are
// discarded, never served.
//
// When the disk tier starts failing (a pulled volume, a full or
// read-only filesystem), the daemon degrades instead of dying: a
// circuit breaker counts disk errors and, past
// `-disk-breaker-threshold` errors within `-disk-breaker-window`,
// stops touching the disk and serves memory-only. Every
// `-disk-breaker-probe` it lets one operation through; a success
// re-closes the breaker and write-through resumes. GET /readyz reports
// ok while healthy, degraded (still 200 — the process serves) while
// the breaker is open, and draining (503 + Retry-After) during
// shutdown; /metrics exposes the breaker state and trip count.
//
// Endpoints, wire schemas and curl walk-throughs are documented in
// docs/API.md; request bodies are exactly battbatch's NDJSON job lines,
// including the per-job "battery" model spec. `-battery
// kind=...,param=...` sets the daemon-wide default battery applied to
// jobs that select none (kinds: rakhmatov, ideal, peukert, kibam,
// calibrated). The daemon writes one structured (JSON) access-log line
// per request to stderr (suppress with -quiet).
//
// Scheduling work is request-scoped: a client that disconnects cancels
// its in-flight batch instead of leaving the server to compute an
// answer nobody will read. `-timeout` bounds every request's scheduling
// time server-side (clients can bound individual jobs with the
// timeout_ms wire field). On SIGINT or SIGTERM the daemon cancels
// running batches — their unfinished jobs return the "canceled" code —
// and exits once the (now fast) drain completes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/battery"
	"repro/internal/cache"
	"repro/internal/server"
	"repro/internal/store"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before the process exits anyway.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		workers     = flag.Int("workers", 0, "concurrent scheduling jobs per request (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "concurrent scheduling requests (0 = 2*GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 1024, "result cache entries (0 disables caching)")
		cacheDir    = flag.String("cache-dir", "", "directory for the disk-backed result store (empty = memory-only cache)")
		cacheDisk   = flag.Int64("cache-disk-max-bytes", store.DefaultMaxBytes, "disk store byte budget, oldest entries evicted first (<0 = unbounded)")
		timeout     = flag.Duration("timeout", 0, "per-request scheduling time budget, e.g. 30s (0 = unbounded)")
		batt        = flag.String("battery", "", "default battery spec for jobs without one, e.g. kibam,capacity=40000,c=0.5,rate=0.1")
		quiet       = flag.Bool("quiet", false, "suppress per-request access logs")

		maxQueued    = flag.Int("queue", 0, "async job queue capacity; full submits get 429 (0 = 4096)")
		queueWorkers = flag.Int("queue-workers", 0, "concurrently executing async jobs (0 = 2*GOMAXPROCS)")
		jobTTL       = flag.Duration("job-ttl", 0, "default async job lifetime incl. queue wait, e.g. 5m (0 = unbounded)")
		jobRetention = flag.Duration("job-retention", 0, "how long finished async jobs stay pollable (0 = 5m)")

		breakThr = flag.Int("disk-breaker-threshold", 0, "disk errors within the window that trip the breaker to memory-only (0 = default 5, negative disables)")
		breakWin = flag.Duration("disk-breaker-window", 0, "sliding window the threshold counts over (0 = default 30s)")
		breakPrb = flag.Duration("disk-breaker-probe", 0, "how long an open breaker waits before half-open probing the disk (0 = default 10s)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", 0)
	var defaultBattery *battery.Spec
	if *batt != "" {
		spec, err := battery.ParseSpec(*batt)
		if err != nil {
			logger.Fatalf("battschedd: -battery: %v", err)
		}
		defaultBattery = &spec
	}
	cfg := server.Config{
		Workers:     *workers,
		MaxInFlight: *maxInflight,
		// The flag follows battbatch's convention (0 = caching off);
		// Config uses 0 = default, negative = off.
		CacheEntries:   *cacheSize,
		RequestTimeout: *timeout,
		DefaultBattery: defaultBattery,
		MaxQueued:      *maxQueued,
		QueueWorkers:   *queueWorkers,
		JobDefaultTTL:  *jobTTL,
		JobRetention:   *jobRetention,
		DiskBreaker: cache.BreakerConfig{
			Threshold: *breakThr,
			Window:    *breakWin,
			Probe:     *breakPrb,
		},
	}
	if *cacheSize == 0 {
		cfg.CacheEntries = -1
	}
	if *cacheDir != "" {
		if *cacheSize == 0 {
			// A disk tier under a disabled cache would never be read or
			// written; refuse the contradiction at startup.
			logger.Fatalf("battschedd: -cache-dir requires caching enabled (-cache > 0)")
		}
		st, rep, err := store.Open(*cacheDir, *cacheDisk)
		if err != nil {
			logger.Fatalf("battschedd: -cache-dir: %v", err)
		}
		logger.Printf("battschedd: warm start from %s: %d entries (%d bytes), %d corrupt skipped, %d tmp swept, %d evicted over budget",
			*cacheDir, rep.Entries, rep.Bytes, rep.Corrupt, rep.TmpSwept, rep.Evicted)
		cfg.CacheStore = st
	}
	if !*quiet {
		cfg.AccessLog = logger
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("battschedd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Printf("battschedd: listening on %s", l.Addr())
	if err := serve(ctx, l, server.New(cfg), logger); err != nil {
		logger.Fatalf("battschedd: %v", err)
	}
}

// serve runs the HTTP server on l until it fails or ctx is cancelled,
// then drains for up to shutdownGrace. The drain is fast by
// construction: s.Close fails requests still queued for capacity with
// an immediate 503 and cancels in-flight scheduling work, so running
// batches return promptly with their unfinished jobs marked canceled
// instead of computing to the end. It returns nil on a clean shutdown.
func serve(ctx context.Context, l net.Listener, s *server.Server, logger *log.Logger) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	logger.Printf("battschedd: shutting down (draining up to %s)", shutdownGrace)
	s.Close()
	//battlint:allow ctxflow ctx is already cancelled here; deriving the drain deadline from it would skip the drain
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

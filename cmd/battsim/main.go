// Command battsim evaluates battery models on discharge profiles: the
// apparent charge lost (the paper's Equation 1), the lifetime against a
// capacity, and the recovery behaviour after the load ends.
//
// Usage:
//
//	battsim -profile load.json [-beta 0.273] [-alpha 40000]
//	battsim -constant 250 -for 120 -alpha 40000
//	echo '[{"current":400,"duration":10}]' | battsim -profile - -alpha 5000
//
// The profile file is a JSON array of {"current": mA, "duration": min}.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/battery"
)

func main() {
	var (
		profilePath = flag.String("profile", "", "profile JSON file ('-' for stdin)")
		constant    = flag.Float64("constant", 0, "instead: constant current in mA")
		duration    = flag.Float64("for", 0, "duration of the constant load in minutes")
		beta        = flag.Float64("beta", battery.DefaultBeta, "Rakhmatov diffusion parameter")
		alpha       = flag.Float64("alpha", 0, "battery capacity in mA·min (0: skip lifetime)")
		peukert     = flag.Float64("peukert", 0, "also evaluate a Peukert model with this exponent")
		refCurrent  = flag.Float64("iref", 100, "Peukert reference current in mA")
		fit         = flag.String("fit", "", "instead: calibrate (alpha, beta) from 'I1:L1,I2:L2,…' measurements")
		svgPath     = flag.String("svg", "", "write an SVG chart of the profile with the sigma overlay to this file")
	)
	flag.Parse()
	if *fit != "" {
		if err := runFit(*fit); err != nil {
			fatal(err)
		}
		return
	}

	p, err := load(*profilePath, *constant, *duration)
	if err != nil {
		fatal(err)
	}
	// Every model goes through the one validated construction path
	// (battery.Spec), so a bad -beta / -peukert / -iref fails with the
	// spec's field-naming error instead of a panic.
	rv, err := resolveSpec(battery.Spec{Kind: battery.KindRakhmatov, Beta: *beta})
	if err != nil {
		fatal(err)
	}
	end := p.TotalTime()
	fmt.Printf("profile:    %d intervals, %.1f min, peak %.0f mA, mean %.0f mA\n",
		len(p), end, p.PeakCurrent(), p.MeanCurrent())
	fmt.Printf("delivered:  %.1f mA·min\n", p.DeliveredCharge(end))
	fmt.Printf("sigma(RV):  %.1f mA·min at end (unavailable %.1f)\n",
		rv.ChargeLost(p, end), battery.UnavailableCharge(rv, p, end))
	fmt.Printf("ideal:      %.1f mA·min\n", battery.Ideal{}.ChargeLost(p, end))
	if *peukert > 0 {
		pk, err := resolveSpec(battery.Spec{Kind: battery.KindPeukert, Exponent: *peukert, RefCurrent: *refCurrent})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("peukert:    %.1f mA·min (k=%g, Iref=%g)\n", pk.ChargeLost(p, end), *peukert, *refCurrent)
	}
	for _, rest := range []float64{10, 60} {
		fmt.Printf("recoverable in %3.0f min rest: %.1f mA·min\n", rest, battery.RecoverableIn(rv, p, rest))
	}
	if *alpha > 0 {
		if t, died := battery.Lifetime(rv, p, *alpha, battery.LifetimeOptions{}); died {
			fmt.Printf("lifetime:   battery (alpha=%.0f) dies at %.2f min\n", *alpha, t)
		} else {
			fmt.Printf("lifetime:   battery (alpha=%.0f) survives the profile\n", *alpha)
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := p.WriteSVG(f, battery.SVGOptions{Model: rv, Title: "discharge profile"}); err != nil {
			fatal(err)
		}
		fmt.Printf("svg:        written to %s\n", *svgPath)
	}
}

// resolveSpec is the CLI's single model-construction gate.
func resolveSpec(spec battery.Spec) (battery.Model, error) {
	return spec.Resolve()
}

func load(path string, constant, duration float64) (battery.Profile, error) {
	if constant > 0 {
		if duration <= 0 {
			return nil, fmt.Errorf("-constant needs a positive -for duration")
		}
		return battery.Profile{{Current: constant, Duration: duration}}, nil
	}
	if path == "" {
		return nil, fmt.Errorf("one of -profile or -constant is required")
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return battery.ReadProfileJSON(r)
}

// runFit parses "I1:L1,I2:L2,…" pairs (current mA : lifetime min),
// calibrates the Rakhmatov model, and prints the fit plus residuals.
func runFit(spec string) error {
	var obs []battery.Observation
	for _, pair := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad observation %q (want I:L)", pair)
		}
		i, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return fmt.Errorf("bad current in %q: %w", pair, err)
		}
		l, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return fmt.Errorf("bad lifetime in %q: %w", pair, err)
		}
		obs = append(obs, battery.Observation{Current: i, Lifetime: l})
	}
	alpha, beta, err := battery.FitRakhmatov(obs)
	if err != nil {
		return err
	}
	fmt.Printf("fitted: alpha=%.1f mA·min, beta=%.4f min^-1/2\n", alpha, beta)
	// The fitted battery as a ready-to-paste declarative spec (usable
	// with battsched/battbatch/battschedd -battery or as the "battery"
	// wire object).
	fmt.Printf("spec:   %s\n", battery.Spec{Kind: battery.KindRakhmatov, Beta: beta})
	pred, err := battery.PredictLifetimes(alpha, beta, obs)
	if err != nil {
		return err
	}
	for k, o := range obs {
		fmt.Printf("  %6.0f mA: measured %8.2f min, model %8.2f min (%+.1f%%)\n",
			o.Current, o.Lifetime, pred[k], (pred[k]/o.Lifetime-1)*100)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "battsim:", err)
	os.Exit(1)
}

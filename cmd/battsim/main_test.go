package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadConstant(t *testing.T) {
	p, err := load("", 250, 10)
	if err != nil || len(p) != 1 || p[0].Current != 250 || p[0].Duration != 10 {
		t.Fatalf("load constant: %v %v", p, err)
	}
	if _, err := load("", 250, 0); err == nil {
		t.Fatal("constant without duration should error")
	}
	if _, err := load("", 0, 0); err == nil {
		t.Fatal("no source should error")
	}
}

func TestLoadProfileFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := os.WriteFile(path, []byte(`[{"current":400,"duration":10},{"current":0,"duration":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := load(path, 0, 0)
	if err != nil || len(p) != 2 {
		t.Fatalf("load: %v %v", p, err)
	}
	if _, err := load(filepath.Join(dir, "absent.json"), 0, 0); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestRunFit(t *testing.T) {
	if err := runFit("100:350,200:160,400:72"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "100", "x:1,2:3", "100:y,200:1", "100:10,100:12"} {
		if err := runFit(bad); err == nil {
			t.Fatalf("runFit(%q) should error", bad)
		}
	}
}

// Command taskgen generates synthetic task graphs with DVS-style design
// points in the JSON schema cmd/battsched consumes. Shapes follow the
// structures the scheduling literature uses (the paper's G3 is fork-join).
//
// Usage:
//
//	taskgen -shape forkjoin -width 4 -depth 1 -tail 8 -m 5 -seed 1 > g.json
//	taskgen -shape layered -layers 4 -widthl 3 -density 0.4 -m 4 > g.json
//	taskgen -shape chain -n 10 -m 3 > g.json
//	taskgen -shape sp -n 15 -m 4 > g.json
//	taskgen -shape random -n 12 -p 0.3 -m 4 > g.json
//
// With -fixture it instead emits one of the paper's built-in graphs
// verbatim (this is how testdata/g2.json and testdata/g3.json are
// regenerated; see the go:generate directives in battsched.go):
//
//	taskgen -fixture g2 -o testdata/g2.json
//	taskgen -fixture g3 -o testdata/g3.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/dvs"
	"repro/internal/taskgraph"
)

// genConfig carries every generation parameter (mirrors the flags).
type genConfig struct {
	shape              string
	n                  int
	width, depth, tail int
	layers, widthL     int
	density, p         float64
	m                  int
	seed               int64
	iLo, iHi, tLo, tHi float64
}

// evenFactors returns m voltage scaling factors evenly spaced from 1 down
// to 1/3 (the G3 recipe's span).
func evenFactors(m int) []float64 {
	factors := make([]float64, m)
	for j := 0; j < m; j++ {
		if m == 1 {
			factors[j] = 1
			continue
		}
		factors[j] = 1 - float64(j)/float64(m-1)*(1-1.0/3.0)
	}
	return factors
}

// buildGraph generates the graph described by cfg.
func buildGraph(cfg genConfig) (*taskgraph.Graph, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	recipe := dvs.Recipe{Factors: evenFactors(cfg.m), Rule: dvs.TimeReversedLinear, Round: 1}

	var total int
	switch strings.ToLower(cfg.shape) {
	case "chain", "sp", "random":
		total = cfg.n
	case "forkjoin":
		total = 1 + cfg.width*cfg.depth + cfg.tail
	case "layered":
		total = cfg.layers * cfg.widthL
	default:
		return nil, fmt.Errorf("unknown shape %q", cfg.shape)
	}
	refs := dvs.RandomRefs(rng, total, cfg.iLo, cfg.iHi, cfg.tLo, cfg.tHi)
	points, err := recipe.PointsFunc(refs)
	if err != nil {
		return nil, err
	}

	switch strings.ToLower(cfg.shape) {
	case "chain":
		return taskgraph.Chain(cfg.n, points)
	case "forkjoin":
		return taskgraph.ForkJoin(cfg.width, cfg.depth, cfg.tail, points)
	case "layered":
		return taskgraph.Layered(rng, cfg.layers, cfg.widthL, cfg.density, points)
	case "sp":
		return taskgraph.SeriesParallel(rng, cfg.n, points)
	default: // "random", by the switch above
		return taskgraph.Random(rng, cfg.n, cfg.p, points)
	}
}

func main() {
	var cfg genConfig
	var fixture, outPath string
	flag.StringVar(&fixture, "fixture", "", "emit a built-in paper graph instead of generating: g2 | g3")
	flag.StringVar(&outPath, "o", "", "write to this file instead of stdout")
	flag.StringVar(&cfg.shape, "shape", "forkjoin", "graph shape: chain | forkjoin | layered | sp | random")
	flag.IntVar(&cfg.n, "n", 12, "task count (chain, sp, random)")
	flag.IntVar(&cfg.width, "width", 4, "fork-join branch count")
	flag.IntVar(&cfg.depth, "depth", 1, "fork-join branch depth")
	flag.IntVar(&cfg.tail, "tail", 8, "fork-join tail length")
	flag.IntVar(&cfg.layers, "layers", 4, "layered: layer count")
	flag.IntVar(&cfg.widthL, "widthl", 3, "layered: tasks per layer")
	flag.Float64Var(&cfg.density, "density", 0.4, "layered: extra edge probability")
	flag.Float64Var(&cfg.p, "p", 0.3, "random: edge probability")
	flag.IntVar(&cfg.m, "m", 5, "design points per task")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed")
	flag.Float64Var(&cfg.iLo, "ilo", 300, "reference current low (mA)")
	flag.Float64Var(&cfg.iHi, "ihi", 950, "reference current high (mA)")
	flag.Float64Var(&cfg.tLo, "tlo", 3, "reference time low (min)")
	flag.Float64Var(&cfg.tHi, "thi", 12, "reference time high (min)")
	flag.Parse()

	var (
		g    *taskgraph.Graph
		name string
		err  error
	)
	if fixture != "" {
		g, name, err = taskgraph.Fixture(fixture)
	} else {
		name = fmt.Sprintf("%s-%d", cfg.shape, cfg.seed)
		g, err = buildGraph(cfg)
	}
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if outPath != "" {
		f, cerr := os.Create(outPath)
		if cerr != nil {
			fatal(cerr)
		}
		defer f.Close()
		out = f
	}
	if err := g.WriteJSON(out, name); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "taskgen: %s\n", g.Analyze(0))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taskgen:", err)
	os.Exit(1)
}

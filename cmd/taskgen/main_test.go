package main

import (
	"testing"
)

func TestEvenFactors(t *testing.T) {
	f := evenFactors(5)
	if len(f) != 5 || f[0] != 1 {
		t.Fatalf("factors = %v", f)
	}
	for j := 1; j < len(f); j++ {
		if f[j] >= f[j-1] {
			t.Fatalf("factors not strictly decreasing: %v", f)
		}
	}
	if f[4] < 0.32 || f[4] > 0.34 {
		t.Fatalf("last factor = %g, want ~1/3", f[4])
	}
	if g := evenFactors(1); len(g) != 1 || g[0] != 1 {
		t.Fatalf("single factor = %v", g)
	}
}

func TestBuildGraphShapes(t *testing.T) {
	for _, shape := range []string{"chain", "forkjoin", "layered", "sp", "random"} {
		cfg := genConfig{
			shape: shape, n: 10, width: 3, depth: 1, tail: 4,
			layers: 3, widthL: 3, density: 0.4, p: 0.3, m: 4, seed: 1,
			iLo: 300, iHi: 900, tLo: 2, tHi: 8,
		}
		g, err := buildGraph(cfg)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if g.N() < 2 {
			t.Fatalf("%s: too few tasks", shape)
		}
		if m, ok := g.UniformPointCount(); !ok || m != 4 {
			t.Fatalf("%s: point count %d,%v", shape, m, ok)
		}
		if !g.IsTopoOrder(g.TopoOrder()) {
			t.Fatalf("%s: invalid graph", shape)
		}
	}
	if _, err := buildGraph(genConfig{shape: "hexagon", m: 2, n: 4, iLo: 1, iHi: 2, tLo: 1, tHi: 2}); err == nil {
		t.Fatal("unknown shape should error")
	}
}

func TestBuildGraphDeterministic(t *testing.T) {
	cfg := genConfig{shape: "layered", layers: 3, widthL: 3, density: 0.5, m: 3, seed: 9, iLo: 100, iHi: 500, tLo: 1, tHi: 5}
	a, err := buildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("edge counts differ across identical seeds")
	}
	for k := range ae {
		if ae[k] != be[k] {
			t.Fatal("edges differ across identical seeds")
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
)

func TestPick(t *testing.T) {
	g2, ds2 := pick("g2")
	if g2.N() != 9 || len(ds2) != 3 {
		t.Fatalf("pick(g2) = %d tasks, %v", g2.N(), ds2)
	}
	g3, ds3 := pick("anything-else")
	if g3.N() != 15 || ds3[2] != 230 {
		t.Fatalf("pick default = %d tasks, %v", g3.N(), ds3)
	}
}

// TestRunEveryExperiment smoke-runs every registered experiment through
// the same dispatch main uses, into a buffer.
func TestRunEveryExperiment(t *testing.T) {
	for _, name := range experiments.Names() {
		if name == "synthetic" {
			continue // covered by its own package tests; slow-ish here
		}
		var out bytes.Buffer
		render := func(tab *report.Table) {
			if err := tab.Render(&out); err != nil {
				t.Fatalf("%s: render: %v", name, err)
			}
		}
		if err := run(name, "g3", render, &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run("nonsense", "g3", func(*report.Table) {}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

// Command paperrepro regenerates the tables and figures of the paper's
// evaluation (Khan & Vemuri, DATE 2005) from this reproduction's own
// algorithms, annotating them with the paper's printed numbers.
//
// Usage:
//
//	paperrepro -all                 # everything, in paper order
//	paperrepro -exp table4          # one experiment
//	paperrepro -exp sweep -graph g2 # deadline sweep on G2
//	paperrepro -list                # available experiment names
//	paperrepro -markdown            # emit markdown instead of text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/taskgraph"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		exp      = flag.String("exp", "", "experiment to run (see -list)")
		list     = flag.Bool("list", false, "list experiment names")
		graph    = flag.String("graph", "g3", "graph for sweep/extended/ablation: g2 or g3")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	out := os.Stdout
	render := func(t *report.Table) {
		var err error
		if *markdown {
			err = t.Markdown(out)
		} else {
			err = t.Render(out)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}
	names := []string{*exp}
	if *all {
		names = []string{"table1", "figure3", "figure4", "table2", "table3", "figure5", "table4", "extended", "ablation", "battery", "sweep", "idle", "models", "synthetic"}
	}
	for _, name := range names {
		if err := run(name, *graph, render, out); err != nil {
			fatal(err)
		}
	}
}

func run(name, graphName string, render func(*report.Table), out io.Writer) error {
	g, deadlines := pick(graphName)
	switch name {
	case "table1":
		render(experiments.Table1())
	case "table2":
		r, err := experiments.Table2()
		if err != nil {
			return err
		}
		render(r.Table)
	case "table3":
		t, err := experiments.Table3()
		if err != nil {
			return err
		}
		render(t)
	case "table4":
		_, t, err := experiments.Table4()
		if err != nil {
			return err
		}
		render(t)
	case "figure3":
		render(experiments.Figure3(5, 4))
	case "figure4":
		render(experiments.Figure4())
	case "figure5":
		t, dot := experiments.Figure5()
		render(t)
		fmt.Fprintln(out, dot)
	case "ablation":
		_, t, err := experiments.Ablation(g, deadlines[len(deadlines)-1])
		if err != nil {
			return err
		}
		render(t)
	case "battery":
		render(experiments.BatteryProperties())
	case "sweep":
		lo := g.MinTotalTime() * 1.02
		hi := g.MaxTotalTime() * 1.05
		t, err := experiments.DeadlineSweep(g, lo, hi, 12)
		if err != nil {
			return err
		}
		render(t)
	case "extended":
		for _, d := range deadlines {
			t, err := experiments.ExtendedComparison(strings.ToUpper(graphName), g, d)
			if err != nil {
				return err
			}
			render(t)
		}
	case "idle":
		// Beyond the paper's deadlines, add two loose ones past the
		// all-slowest completion time — the regime where slack cannot
		// be converted into lower design points and only rest can
		// spend it.
		ds := append(append([]float64(nil), deadlines...), g.MaxTotalTime()*1.1, g.MaxTotalTime()*1.5)
		t, err := experiments.IdleExtension(g, ds)
		if err != nil {
			return err
		}
		render(t)
	case "models":
		t, err := experiments.ModelComparison(g, deadlines[len(deadlines)-1])
		if err != nil {
			return err
		}
		render(t)
	case "synthetic":
		_, t, err := experiments.SyntheticSuite(experiments.SyntheticConfig{Seed: 1})
		if err != nil {
			return err
		}
		render(t)
	default:
		return fmt.Errorf("unknown experiment %q (try -list)", name)
	}
	return nil
}

func pick(name string) (*taskgraph.Graph, []float64) {
	switch strings.ToLower(name) {
	case "g2":
		return taskgraph.G2(), taskgraph.G2Deadlines
	default:
		return taskgraph.G3(), taskgraph.G3Deadlines
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperrepro:", err)
	os.Exit(1)
}

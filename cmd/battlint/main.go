// Command battlint is the repository's invariant checker: a
// multichecker over the analyzers in internal/analysis/... that
// machine-check what the test suite can only spot-check — canonical
// encoders covering every exported field, contexts threaded once
// received, map iteration order kept out of deterministic outputs,
// filesystem calls routed through the injectable fault seam, the hot
// path free of allocating calls, and no dead stores.
//
// Standalone use (what scripts/lint.sh and CI run):
//
//	go run ./cmd/battlint ./...
//	go run ./cmd/battlint -list
//	go run ./cmd/battlint -run detrange,hotpath ./internal/core
//
// Findings print as "file:line:col: [analyzer] message"; the exit code
// is 1 when there are findings, 2 on usage or load errors, 0 when
// clean. A finding is acknowledged in place with
// //battlint:allow <analyzer> <reason> — see internal/analysis.
//
// battlint also speaks the go vet driver protocol (-V=full handshake,
// -flags, and single <unit>.cfg invocations), so a built binary works
// as a vettool:
//
//	go build -o /tmp/battlint ./cmd/battlint
//	go vet -vettool=/tmp/battlint ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/canonfields"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/fsseam"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/unusedwrite"
)

// all is the battlint vocabulary: every analyzer, in the order -list
// prints them. Filter treats exactly these names as known in
// //battlint:allow comments.
var all = []*analysis.Analyzer{
	canonfields.Analyzer,
	ctxflow.Analyzer,
	detrange.Analyzer,
	fsseam.Analyzer,
	hotpath.Analyzer,
	unusedwrite.Analyzer,
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	// The go vet driver invokes its tool with exactly one argument per
	// protocol step: -V=full to identify the tool, -flags to discover
	// tool flags, then one <unit>.cfg per package.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("%s version v1 buildID=battlint-v1\n", progname())
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return vetUnit(args[0])
		}
	}

	fs := flag.NewFlagSet("battlint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: battlint [-list] [-run names] [package patterns]\n")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "print the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer `names` to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	known := knownNames()
	selected := all
	if *runNames != "" {
		selected = nil
		for _, name := range strings.Split(*runNames, ",") {
			name = strings.TrimSpace(name)
			a := byName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "battlint: unknown analyzer %q (see battlint -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}
	ran := map[string]bool{}
	for _, a := range selected {
		ran[a.Name] = true
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "battlint:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "battlint:", err)
			return 2
		}
		for _, f := range analysis.Filter(findings, pkg, known, ran) {
			fmt.Println(f)
			exit = 1
		}
	}
	return exit
}

// vetConfig is the subset of the go vet unit-config JSON battlint
// reads (the shape x/tools' unitchecker documents).
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package on behalf of the go vet driver.
func vetUnit(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "battlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "battlint: parsing %s: %v\n", path, err)
		return 2
	}
	// battlint keeps no cross-package facts, but the driver caches and
	// re-feeds the facts file, so it must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "battlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := analysis.LoadVetUnit(cfg.ImportPath, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "battlint:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(pkg, all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "battlint:", err)
		return 2
	}
	filtered := analysis.Filter(findings, pkg, knownNames(), nil)
	for _, f := range filtered {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(filtered) > 0 {
		return 1
	}
	return 0
}

func knownNames() map[string]bool {
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	return known
}

func byName(name string) *analysis.Analyzer {
	for _, a := range all {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func progname() string {
	name := filepath.Base(os.Args[0])
	return strings.TrimSuffix(name, ".exe")
}

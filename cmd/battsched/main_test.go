package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFixtures(t *testing.T) {
	g2, err := load("", "g2")
	if err != nil || g2.N() != 9 {
		t.Fatalf("g2: %v, n=%d", err, g2.N())
	}
	g3, err := load("", "G3") // case-insensitive
	if err != nil || g3.N() != 15 {
		t.Fatalf("g3: %v", err)
	}
	if _, err := load("", "g9"); err == nil {
		t.Fatal("unknown fixture should error")
	}
	if _, err := load("", ""); err == nil {
		t.Fatal("no source should error")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	spec := `{"tasks":[
		{"id":1,"points":[{"current":100,"time":1},{"current":10,"time":2}]},
		{"id":2,"points":[{"current":100,"time":1},{"current":10,"time":2}],"parents":[1]}
	]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := load(path, "")
	if err != nil || g.N() != 2 {
		t.Fatalf("load: %v", err)
	}
	if _, err := load(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad, ""); err == nil {
		t.Fatal("bad JSON should error")
	}
}

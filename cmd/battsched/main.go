// Command battsched schedules a task-graph JSON file onto a battery-powered
// platform with the paper's iterative battery-aware algorithm and prints
// the schedule, its battery cost and a comparison with the baselines.
//
// Usage:
//
//	battsched -graph app.json -deadline 230 [-beta 0.273] [-algo iterative]
//	battsched -fixture g3 -deadline 230 -trace
//	battsched -fixture g3 -deadline 230 -battery kibam,capacity=40000,c=0.5,rate=0.1
//
// -battery selects the battery model declaratively (kinds: rakhmatov,
// ideal, peukert, kibam, calibrated; see battery.ParseSpec for the
// parameter names); it subsumes -beta, which remains as the Rakhmatov
// shorthand. The graph schema is documented in the README; cmd/taskgen
// generates synthetic instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "task graph JSON file")
		fixture   = flag.String("fixture", "", "use a built-in graph instead: g2 or g3")
		deadline  = flag.Float64("deadline", 0, "deadline in minutes (required)")
		beta      = flag.Float64("beta", battery.DefaultBeta, "battery diffusion parameter (min^-1/2); shorthand for -battery rakhmatov,beta=...")
		batt      = flag.String("battery", "", "battery model spec, e.g. kibam,capacity=40000,c=0.5,rate=0.1 (kinds: rakhmatov | ideal | peukert | kibam | calibrated)")
		algo      = flag.String("algo", "iterative", "algorithm: iterative | rv-dp | chowdhury | all-fastest | lowest-power")
		approx    = flag.Float64("approx", 0, "approximation tolerance in B-units for the iterative algorithm (0 = exact mode; max 16)")
		trace     = flag.Bool("trace", false, "print the per-iteration trace (iterative only)")
		dot       = flag.Bool("dot", false, "also print the graph in DOT")
		timeline  = flag.Bool("timeline", false, "print a text Gantt chart with a current sparkline")
		idle      = flag.Bool("idle", false, "spend leftover slack as recovery rest (iterative only)")
		showStats = flag.Bool("stats", false, "print graph structure analysis")
	)
	flag.Parse()
	if *deadline <= 0 {
		fatal(fmt.Errorf("a positive -deadline is required"))
	}
	g, err := load(*graphPath, *fixture)
	if err != nil {
		fatal(err)
	}
	// One validated construction path for the cost model: the -battery
	// spec if given, else the -beta Rakhmatov shorthand as a spec.
	opt := core.Options{Beta: *beta, RecordTrace: *trace, Approx: *approx}
	if *batt != "" {
		betaSet := false
		flag.Visit(func(f *flag.Flag) { betaSet = betaSet || f.Name == "beta" })
		if betaSet {
			fatal(fmt.Errorf("-beta and -battery are mutually exclusive (use -battery rakhmatov,beta=...)"))
		}
		spec, err := battery.ParseSpec(*batt)
		if err != nil {
			fatal(err)
		}
		opt = core.Options{Battery: &spec, RecordTrace: *trace, Approx: *approx}
	}
	model, err := opt.ResolveModel()
	if err != nil {
		fatal(err)
	}
	if *showStats {
		fmt.Printf("graph:     %s\n", g.Analyze(0))
	}

	var schedule *sched.Schedule
	switch strings.ToLower(*algo) {
	case "iterative":
		s, err := core.New(g, *deadline, opt)
		if err != nil {
			fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			fatal(err)
		}
		schedule = res.Schedule
		if *trace {
			fmt.Print(res.Trace.String())
		}
		fmt.Printf("iterations: %d\n", res.Iterations)
		if *idle {
			plan, err := core.OptimizeIdle(g, schedule, *deadline, model, 0)
			if err != nil {
				fatal(err)
			}
			if plan.TotalIdle() > 0 {
				fmt.Printf("idle:      %.1f min of recovery rest placed, sigma %.0f -> %.0f (%.1f%%)\n",
					plan.TotalIdle(), plan.BaseCost, plan.Cost, core.IdleSavings(plan)*100)
			} else {
				fmt.Println("idle:      no rest placement helps at this deadline")
			}
		}
	case "rv-dp":
		schedule, err = baseline.RakhmatovSchedule(g, *deadline)
	case "chowdhury":
		schedule, err = baseline.ChowdhurySchedule(g, *deadline, nil)
	case "all-fastest":
		schedule, err = baseline.AllFastest(g, *deadline)
	case "lowest-power":
		schedule, err = baseline.LowestPowerFeasible(g, *deadline)
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}

	stats := schedule.Summarize(g, model, *deadline)
	fmt.Printf("schedule:  %s\n", schedule)
	fmt.Printf("duration:  %.1f min (deadline %.1f, slack %.1f)\n", stats.Duration, *deadline, stats.Slack)
	fmt.Printf("sigma:     %.0f mA·min (%s)\n", stats.Cost, stats.ModelName)
	fmt.Printf("energy:    %.0f mA·min delivered\n", stats.Energy)
	fmt.Printf("peak/mean: %.0f / %.0f mA, CIF %.2f\n", stats.PeakI, stats.MeanI, stats.CIF)
	if !stats.Feasible {
		fatal(fmt.Errorf("internal error: produced an infeasible schedule"))
	}
	if *timeline {
		if err := schedule.WriteTimeline(os.Stdout, g, 100); err != nil {
			fatal(err)
		}
	}
	if *dot {
		if err := g.WriteDOT(os.Stdout, "app"); err != nil {
			fatal(err)
		}
	}
}

func load(path, fixture string) (*taskgraph.Graph, error) {
	switch {
	case fixture != "":
		switch strings.ToLower(fixture) {
		case "g2":
			return taskgraph.G2(), nil
		case "g3":
			return taskgraph.G3(), nil
		default:
			return nil, fmt.Errorf("unknown fixture %q (g2 or g3)", fixture)
		}
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return taskgraph.ReadJSON(f)
	default:
		return nil, fmt.Errorf("one of -graph or -fixture is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "battsched:", err)
	os.Exit(1)
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus scaling and ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigureN target reproduces the computation
// behind that exhibit; correctness of the regenerated values is asserted
// by the unit tests (internal/core, internal/baseline, internal/battery)
// and recorded in EXPERIMENTS.md.
package battsched_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	battsched "repro"
	"repro/internal/baseline"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/taskgraph"
)

// BenchmarkTable1Fixture measures building the G3 fixture (Table 1): the
// cost of graph construction and validation.
func BenchmarkTable1Fixture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := taskgraph.G3()
		if g.N() != 15 {
			b.Fatal("bad fixture")
		}
	}
}

// BenchmarkTable2G3Iterations regenerates Table 2: the full iterative run
// on G3 at deadline 230 with tracing (sequences + assignments per
// iteration).
func BenchmarkTable2G3Iterations(b *testing.B) {
	g := taskgraph.G3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.New(g, taskgraph.G3Deadline, core.Options{RecordTrace: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3WindowSweep regenerates Table 3's core work: full window
// sweeps (4 windows each) over G3 through a reusing Runner — the
// scheduler's steady-state serving shape. After the warm-up run the loop
// body is allocation-free (0 allocs/op; pinned by
// core.TestRunnerSteadyStateZeroAlloc).
func BenchmarkTable3WindowSweep(b *testing.B) {
	g := taskgraph.G3()
	s, err := core.New(g, taskgraph.G3Deadline, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := s.NewRunner()
	if _, err := r.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Comparison regenerates Table 4: ours vs. the
// reference-[1] baseline on both graphs across all six deadlines.
func BenchmarkTable4Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4BaselineDP isolates the baseline's dynamic program on G3
// at the loosest deadline (the dominant baseline cost).
func BenchmarkTable4BaselineDP(b *testing.B) {
	g := taskgraph.G3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.MinEnergyAssignment(g, 230); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4DPF measures the DPF escalation machinery: one
// chooseDesignPoints pass per window on G3 (the paper's Figure 4 procedure
// is its inner loop). Exercised via a full single-window run.
func BenchmarkFigure4DPF(b *testing.B) {
	g := taskgraph.G3()
	s, err := core.New(g, taskgraph.G3Deadline, core.Options{Windows: core.WindowFirstFeasible, DisableResequencing: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5G2CaseStudy schedules the robotic arm controller at its
// middle deadline (the Section 5 case study).
func BenchmarkFigure5G2CaseStudy(b *testing.B) {
	g := taskgraph.G2()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.New(g, 75, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatterySigma measures one Equation-1 evaluation on a
// 15-interval profile (the scheduler's innermost cost call).
func BenchmarkBatterySigma(b *testing.B) {
	g := taskgraph.G3()
	res, err := battsched.Run(g, 230, battsched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := res.Schedule.Profile(g)
	T := p.TotalTime()
	m := battery.NewRakhmatov(battery.DefaultBeta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.ChargeLost(p, T) <= 0 {
			b.Fatal("bad sigma")
		}
	}
}

// BenchmarkBatteryLifetime measures the first-crossing lifetime solver.
func BenchmarkBatteryLifetime(b *testing.B) {
	p := battery.Profile{
		{Current: 600, Duration: 10}, {Current: 0, Duration: 20},
		{Current: 400, Duration: 15}, {Current: 100, Duration: 30},
	}
	m := battery.NewRakhmatov(battery.DefaultBeta)
	alpha := m.ChargeLost(p, p.TotalTime()) * 0.8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, died := battery.Lifetime(m, p, alpha, battery.LifetimeOptions{}); !died {
			b.Fatal("should die")
		}
	}
}

// BenchmarkScalingTasks sweeps the scheduler over growing synthetic
// fork-join graphs (the paper's target shape) to expose the algorithm's
// polynomial scaling in n. The upper sizes (n = 160..1000) are an order
// of magnitude past the paper's instances; they exist to keep the
// trajectory-replay + bound-skip design honest as n grows (scripts/
// bench_compare.sh gates regressions against the committed snapshots).
func BenchmarkScalingTasks(b *testing.B) {
	for _, n := range []int{10, 20, 40, 80, 160, 320, 640, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			recipe := dvs.Recipe{Factors: dvs.G3Factors, Rule: dvs.TimeReversedLinear, Round: 1}
			points, err := recipe.PointsFunc(dvs.RandomRefs(rng, n, 300, 900, 2, 8))
			if err != nil {
				b.Fatal(err)
			}
			g, err := taskgraph.ForkJoin(4, (n-6)/4, 5, points)
			if err != nil {
				b.Fatal(err)
			}
			deadline := g.MinTotalTime() + 0.6*(g.MaxTotalTime()-g.MinTotalTime())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.New(g, deadline, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeadlineSweep measures the cross-deadline reuse path: one
// n=80 benchmark graph evaluated at 16 deadlines spanning the feasible
// range, once by constructing a fresh scheduler per deadline (the
// pre-SweepRunner idiom) and once through a SweepRunner sharing the
// deadline-independent construction, scratch arena and initial sequence.
// The per-op unit is one full 16-deadline sweep.
func BenchmarkDeadlineSweep(b *testing.B) {
	const n = 80
	rng := rand.New(rand.NewSource(int64(n)))
	recipe := dvs.Recipe{Factors: dvs.G3Factors, Rule: dvs.TimeReversedLinear, Round: 1}
	points, err := recipe.PointsFunc(dvs.RandomRefs(rng, n, 300, 900, 2, 8))
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.ForkJoin(4, (n-6)/4, 5, points)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := g.MinTotalTime(), g.MaxTotalTime()
	deadlines := make([]float64, 16)
	for i := range deadlines {
		deadlines[i] = lo + (0.1+0.8*float64(i)/15)*(hi-lo)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range deadlines {
				s, err := core.New(g, d, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sweeprunner", func(b *testing.B) {
		sr, err := core.NewSweepRunner(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range deadlines {
				if _, err := sr.Run(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkScalingPoints sweeps the design-point count m at fixed n.
func BenchmarkScalingPoints(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(m)))
			factors := make([]float64, m)
			for j := range factors {
				factors[j] = 1 - float64(j)/float64(m)*0.66
			}
			recipe := dvs.Recipe{Factors: factors, Rule: dvs.TimeReversedLinear}
			points, err := recipe.PointsFunc(dvs.RandomRefs(rng, 15, 300, 900, 2, 8))
			if err != nil {
				b.Fatal(err)
			}
			g, err := taskgraph.ForkJoin(4, 2, 6, points)
			if err != nil {
				b.Fatal(err)
			}
			deadline := g.MinTotalTime() + 0.6*(g.MaxTotalTime()-g.MinTotalTime())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.New(g, deadline, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches: the cost of each design choice the paper asserts.

func benchOption(b *testing.B, opt core.Options) {
	g := taskgraph.G3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.New(g, taskgraph.G3Deadline, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFull is the paper's full configuration (reference
// point for the other ablations).
func BenchmarkAblationFull(b *testing.B) { benchOption(b, core.Options{}) }

// BenchmarkAblationNoResequencing drops the Equation-4 resequencing loop.
func BenchmarkAblationNoResequencing(b *testing.B) {
	benchOption(b, core.Options{DisableResequencing: true})
}

// BenchmarkAblationSingleWindow evaluates only the narrowest feasible
// window instead of sweeping.
func BenchmarkAblationSingleWindow(b *testing.B) {
	benchOption(b, core.Options{Windows: core.WindowFirstFeasible})
}

// BenchmarkAblationNoDPF drops the DPF term (the costliest factor).
func BenchmarkAblationNoDPF(b *testing.B) {
	benchOption(b, core.Options{Factors: core.AllFactors &^ core.FactorDPF})
}

// BenchmarkAblationAvgEnergyOrder uses the paper's literal "average
// energy" initial ordering.
func BenchmarkAblationAvgEnergyOrder(b *testing.B) {
	benchOption(b, core.Options{InitialOrder: core.WeightAvgEnergy})
}

// BenchmarkExhaustiveOracle measures the branch-and-bound oracle on a
// 6-task instance (the validation workhorse).
func BenchmarkExhaustiveOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	points := func(i int) []taskgraph.DesignPoint {
		base := float64(rng.Intn(500) + 100)
		tb := float64(rng.Intn(30)+5) / 10
		return []taskgraph.DesignPoint{
			{Current: base, Time: tb},
			{Current: base / 4, Time: tb * 1.8},
			{Current: base / 16, Time: tb * 3},
		}
	}
	g, err := taskgraph.Random(rng, 6, 0.35, points)
	if err != nil {
		b.Fatal(err)
	}
	deadline := g.MinTotalTime() + 0.5*(g.MaxTotalTime()-g.MinTotalTime())
	m := battery.NewRakhmatov(battery.DefaultBeta)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Optimal(g, deadline, m, baseline.OptimalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealing measures the simulated-annealing comparator at its
// default budget on G2 (the search the paper deems too heavy on-device).
func BenchmarkAnnealing(b *testing.B) {
	g := taskgraph.G2()
	m := battery.NewRakhmatov(battery.DefaultBeta)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Anneal(g, 75, m, baseline.AnnealOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelWindows compares the concurrent window evaluator
// against the sequential default on a larger synthetic instance (the
// results are identical; this measures the wall-clock effect only).
func BenchmarkParallelWindows(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	factors := make([]float64, 8)
	for j := range factors {
		factors[j] = 1 - float64(j)/8*0.66
	}
	recipe := dvs.Recipe{Factors: factors, Rule: dvs.TimeReversedLinear}
	points, err := recipe.PointsFunc(dvs.RandomRefs(rng, 40, 300, 900, 2, 8))
	if err != nil {
		b.Fatal(err)
	}
	g, err := taskgraph.ForkJoin(4, 7, 11, points)
	if err != nil {
		b.Fatal(err)
	}
	deadline := g.MinTotalTime() + 0.6*(g.MaxTotalTime()-g.MinTotalTime())
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := core.New(g, deadline, core.Options{Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiStart measures the 8-restart multi-start search on G3.
func BenchmarkMultiStart(b *testing.B) {
	g := taskgraph.G3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.New(g, taskgraph.G3Deadline, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunMultiStart(s, core.MultiStartOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiStartParallel compares sequential multi-start against
// the concurrent restart fan-out on G3 (results are bit-identical; this
// measures the wall-clock effect — near-linear until restarts < cores).
func BenchmarkMultiStartParallel(b *testing.B) {
	g := taskgraph.G3()
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, err := core.New(g, taskgraph.G3Deadline, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunMultiStart(s, core.MultiStartOptions{Restarts: 32, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatch pushes a 24-job batch (the six paper graph×deadline
// cells under four strategies) through the engine at several pool sizes.
func BenchmarkBatch(b *testing.B) {
	var jobs []engine.Job
	for _, strategy := range []string{"iterative", "multistart", "withidle", "rv-dp"} {
		for _, d := range taskgraph.G2Deadlines {
			jobs = append(jobs, engine.Job{Graph: taskgraph.G2(), Deadline: d, Strategy: strategy,
				MultiStart: core.MultiStartOptions{Restarts: 8, Seed: 1, Workers: 1}})
		}
		for _, d := range taskgraph.G3Deadlines {
			jobs = append(jobs, engine.Job{Graph: taskgraph.G3(), Deadline: d, Strategy: strategy,
				MultiStart: core.MultiStartOptions{Restarts: 8, Seed: 1, Workers: 1}})
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range engine.RunBatch(jobs, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkIdleOptimization measures the recovery-rest placement pass.
func BenchmarkIdleOptimization(b *testing.B) {
	g := taskgraph.G3()
	deadline := g.MaxTotalTime() * 1.2
	res, err := battsched.Run(g, deadline, battsched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := battery.NewRakhmatov(battery.DefaultBeta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeIdle(g, res.Schedule, deadline, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatteryFit measures Rakhmatov calibration from five
// observations (grid scan + golden refinement).
func BenchmarkBatteryFit(b *testing.B) {
	m := battery.NewRakhmatov(0.273)
	var obs []battery.Observation
	for _, i := range []float64{50, 100, 200, 400, 800} {
		l, err := battery.ConstantLoadLifetime(m, i, 40000)
		if err != nil {
			b.Fatal(err)
		}
		obs = append(obs, battery.Observation{Current: i, Lifetime: l})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := battery.FitRakhmatov(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyntheticSuite measures one small synthetic-suite cell batch.
func BenchmarkSyntheticSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.SyntheticSuite(experiments.SyntheticConfig{
			Seed: int64(i), Instances: 2, Tasks: 10, Points: 3, SlackLevels: []float64{0.3},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedRun compares a cold scheduling run against a cache
// hit on the same request — the amortization the battschedd serving
// path is built on. The cached case is a canonical-hash lookup plus a
// result deep-copy, so it runs orders of magnitude (well over 10x)
// faster than the cold iterative search it replaces.
func BenchmarkCachedRun(b *testing.B) {
	g := battsched.G3()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh cache each iteration: every run computes.
			c := battsched.NewCache(4)
			if _, err := battsched.RunCached(c, g, 230, battsched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := battsched.NewCache(4)
		if _, err := battsched.RunCached(c, g, 230, battsched.Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := battsched.RunCached(c, g, 230, battsched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		if st := c.Stats(); st.Hits == 0 || st.Misses != 1 {
			b.Fatalf("benchmark did not hit the cache: %+v", st)
		}
	})
}

// BenchmarkSimulation measures one simulated platform run of a 15-task
// schedule with battery-death checking.
func BenchmarkSimulation(b *testing.B) {
	g := taskgraph.G3()
	res, err := battsched.Run(g, 230, battsched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plat := sim.Platform{Capacity: 1e9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(plat, g, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
